package election

import (
	"fmt"

	"repro/internal/objects"
	"repro/internal/registers"
	"repro/internal/sim"
)

// Slot is one transition of the first-use permutation tree: the right
// to perform the successful c&s(last(Prefix) → Next) that extends the
// register's first-use sequence from Prefix by the fresh value Next.
// Slots are the static unit of contention ownership in the Permutation
// protocol; the same tree of "first values" labels groups of emulators
// in the paper's emulation (§3.1).
type Slot struct {
	// Prefix is the ordered sequence of distinct non-⊥ symbols already
	// first-used when this slot becomes enabled (possibly empty).
	Prefix []objects.Symbol
	// Next is the fresh symbol this slot introduces; Next ∉ Prefix.
	Next objects.Symbol
}

// String renders the slot as "(⊥ 1 0 → 2)".
func (s Slot) String() string {
	out := "(⊥"
	for _, sym := range s.Prefix {
		out += " " + sym.String()
	}
	return out + " → " + s.Next.String() + ")"
}

// key canonically encodes a (prefix, next) pair for lookup.
func (s Slot) key() string { return chainKey(s.Prefix) + ">" + s.Next.String() }

func chainKey(chain []objects.Symbol) string {
	out := ""
	for _, sym := range chain {
		out += fmt.Sprintf("%d.", int(sym))
	}
	return out
}

// Slots enumerates every slot of the permutation tree over
// compare&swap-(k), in deterministic order (by prefix, depth-first,
// symbols ascending). The count is Σ_{j=1..k−1} (k−1)!/(k−1−j)! ≈
// e·(k−1)! — the capacity shape of the O(k!) election algorithm the
// paper cites from [1].
func Slots(k int) []Slot {
	var out []Slot
	symbols := make([]objects.Symbol, k-1)
	for i := range symbols {
		symbols[i] = objects.Symbol(i + 1)
	}
	var rec func(prefix []objects.Symbol)
	rec = func(prefix []objects.Symbol) {
		used := make(map[objects.Symbol]bool, len(prefix))
		for _, s := range prefix {
			used[s] = true
		}
		for _, s := range symbols {
			if used[s] {
				continue
			}
			p := make([]objects.Symbol, len(prefix))
			copy(p, prefix)
			out = append(out, Slot{Prefix: p, Next: s})
			rec(append(prefix, s))
		}
	}
	rec(nil)
	return out
}

// Capacity returns the number of processes the Permutation protocol
// supports with compare&swap-(k): one per slot.
func Capacity(k int) int {
	// Σ_{j=1..k−1} P(k−1, j), computed directly.
	total := 0
	perm := 1
	for j := 1; j <= k-1; j++ {
		perm *= k - j // P(k−1, j) built incrementally
		total += perm
	}
	return total
}

// Permutation returns Capacity(k) programs electing a leader among
// processes with arbitrary identities, using one compare&swap-(k)
// register plus read/write registers. identities must have exactly
// Capacity(k) entries; process i owns slot Slots(k)[i].
//
// Protocol: the register only ever moves to fresh symbols, so its value
// sequence is a growing prefix of a permutation of Σ∖{⊥}. Each slot
// (p, b) has a unique statically-assigned owner, the only process
// allowed to attempt c&s(last(p) → b); since last(p) never recurs, at
// most one such c&s ever succeeds and the successful owner records a
// breadcrumb in its single-writer register. Every process repeatedly
// rebuilds the realized chain from the breadcrumbs; when the chain
// reaches length k−1 the permutation is complete and everyone decides
// the announced identity of the final slot's owner.
//
// Liveness: the protocol is live when all processes participate and
// none crashes (every enabled frontier has all its owners present) —
// it is NOT wait-free: crashing the unique owner of a frontier slot
// stalls everyone, which is precisely the difficulty the paper's
// suspension machinery (§3.1.1) exists to overcome, and why wait-free
// capacity is nonetheless bounded by O(k^(k²+3)).
func Permutation(sys *sim.System, cas *objects.CAS, identities []sim.Value) []sim.Program {
	k := cas.K()
	slots := Slots(k)
	if len(identities) != len(slots) {
		panic(fmt.Sprintf("election: Permutation over compare&swap-(%d) needs exactly %d processes, got %d",
			k, len(slots), len(identities)))
	}
	n := len(slots)
	slotIndex := make(map[string]int, n)
	for i, s := range slots {
		slotIndex[s.key()] = i
	}
	ann := registers.NewArray(sys, cas.Name()+".ann", n, nil)
	done := registers.NewArray(sys, cas.Name()+".done", n, false)

	progs := make([]sim.Program, n)
	for i := 0; i < n; i++ {
		i := i
		slot := slots[i]
		progs[i] = func(e *sim.Env) (sim.Value, error) {
			ann.Write(e, identities[i])
			marked := false
			for {
				crumbs := done.Collect(e)
				chain := buildChain(slots, slotIndex, crumbs)
				if len(chain) == k-1 {
					last := slotIndex[Slot{Prefix: chain[:k-2], Next: chain[k-2]}.key()]
					leader := ann.Read(e, last)
					return leader, nil
				}
				if !marked && prefixEqual(chain, slot.Prefix) {
					from := objects.Bottom
					if len(chain) > 0 {
						from = chain[len(chain)-1]
					}
					if cas.CompareAndSwap(e, from, slot.Next) == from {
						done.Write(e, true)
						marked = true
					}
				}
			}
		}
	}
	return progs
}

// buildChain reconstructs the realized first-use chain from the
// breadcrumb bits: starting empty, repeatedly extend by the unique
// marked slot whose prefix equals the chain so far. Breadcrumbs may lag
// the register (a success not yet marked), so the result is a prefix of
// the true chain — always safe to act on.
func buildChain(slots []Slot, slotIndex map[string]int, crumbs []sim.Value) []objects.Symbol {
	var chain []objects.Symbol
	for {
		extended := false
		for i, s := range slots {
			if crumbs[i] != true {
				continue
			}
			if prefixEqual(chain, s.Prefix) {
				chain = append(chain, s.Next)
				extended = true
				break
			}
		}
		if !extended {
			return chain
		}
	}
}

func prefixEqual(a, b []objects.Symbol) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
