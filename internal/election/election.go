// Package election implements wait-free leader election protocols over
// one compare&swap-(k) register, the task the paper's bounds are about.
//
// In the Leader Election (LE) problem each process proposes its own
// identity; all processes must elect one proposed identity (§2 of the
// paper: consistent, wait-free, valid). Three protocols chart the
// capacity landscape that the paper delimits:
//
//   - DirectCAS: the register alone, identities drawn from the
//     register's alphabet — capacity k−1, the Burns–Cruz–Loui regime.
//   - AnnouncedCAS: the register plus read/write registers, arbitrary
//     identities — wait-free capacity k−1 ports, and provably fragile
//     at n = k (the explorer finds disagreement).
//   - Permutation (see permutation.go): the register plus read/write
//     registers, capacity Θ((k−1)!) — the shape of the O(k!) algorithm
//     of Afek–Stupp [FOCS '93] — at the price of crash-freedom, which
//     is exactly the wait-freedom difficulty the paper's emulation
//     machinery exists to overcome.
package election

import (
	"fmt"

	"repro/internal/objects"
	"repro/internal/registers"
	"repro/internal/sim"
)

// DirectCAS returns n programs electing a leader among processes whose
// identities are 0..n−1, using ONE compare&swap-(k) register and
// nothing else. Process i claims symbol i+1; the register's final value
// names the leader. This is the register-alone regime of Burns, Cruz
// and Loui (reference [5]): a k-valued register elects at most k−1
// processes, and this protocol achieves exactly that bound.
// The constructor panics if n > k−1.
func DirectCAS(cas *objects.CAS, n int) []sim.Program {
	return DirectCASOn(cas, cas.K(), n)
}

// DirectCASOn is DirectCAS over any object speaking the compare&swap-(k)
// operation alphabet — in particular a faults.Wrap'd CAS register, so
// the identical protocol (and hence the identical schedule tree) runs
// over bare and fault-wrapped objects; that is what makes wrapper
// overhead directly measurable. k is the register's alphabet size; the
// caller asserts it since a generic sim.Object cannot be asked.
func DirectCASOn(obj sim.Object, k, n int) []sim.Program {
	if n > k-1 {
		panic(fmt.Sprintf("election: DirectCAS: %d processes exceed compare&swap-(%d) capacity %d",
			n, k, k-1))
	}
	progs := make([]sim.Program, n)
	for i := 0; i < n; i++ {
		i := i
		progs[i] = func(e *sim.Env) (sim.Value, error) {
			// The whole protocol is one "elect" operation of the paper's
			// sequentially-specified LE object (§2): record it as a span
			// so runs can be checked against spec.ElectionSpec.
			sp := e.BeginOp(obj.Name()+".le", "elect", i)
			e.Apply2(obj, objects.OpCAS, objects.Bottom, objects.Symbol(i+1))
			winner := int(e.Apply0(obj, sim.OpRead).(objects.Symbol)) - 1
			e.EndOp(sp, winner)
			return winner, nil
		}
	}
	return progs
}

// AnnouncedCAS returns n programs electing a leader among processes
// with arbitrary identities (identities[i] is process i's input),
// using one compare&swap-(k) register plus an announce array. Process i
// occupies port i mod (k−1): it announces its identity in read/write
// memory, claims its port's symbol, and decides the announced identity
// of the first announcer on the winning port.
//
// With n ≤ k−1 every port has one owner and the protocol is a correct
// wait-free LE for arbitrary identities — this is how read/write
// registers add power over the register-alone regime (arbitrary
// identity universe instead of alphabet-sized). With n > k−1 two
// processes share a port and the explorer finds disagreeing schedules;
// the constructor permits n up to k so experiments can exhibit exactly
// that failure.
func AnnouncedCAS(sys *sim.System, cas *objects.CAS, identities []sim.Value) []sim.Program {
	n := len(identities)
	k := cas.K()
	if n > k {
		panic(fmt.Sprintf("election: AnnouncedCAS: n=%d > k=%d not supported (one shared port suffices to show the failure)", n, k))
	}
	ann := registers.NewArray(sys, cas.Name()+".ann", n, nil)
	progs := make([]sim.Program, n)
	for i := 0; i < n; i++ {
		i := i
		port := i % (k - 1)
		progs[i] = func(e *sim.Env) (sim.Value, error) {
			sp := e.BeginOp(cas.Name()+".le", "elect", identities[i])
			ann.Write(e, identities[i])
			cas.CompareAndSwap(e, objects.Bottom, objects.Symbol(port+1))
			winPort := int(cas.Read(e)) - 1
			// Decide the first visible announcement among the port's
			// possible owners (deterministic rule: lowest process index).
			// With one owner per port this is exact; with a shared port
			// it is the ambiguity that breaks n = k.
			for j := winPort; j < n; j += k - 1 {
				if v := ann.Read(e, j); v != nil {
					e.EndOp(sp, v)
					return v, nil
				}
			}
			return nil, fmt.Errorf("election: winning port %d has no announcement", winPort)
		}
	}
	return progs
}

// CheckElection verifies an election run: agreement among decided
// processes, and validity — the elected identity is the input of one
// of the n processes.
func CheckElection(res *sim.Result, identities []sim.Value) error {
	d := res.DistinctDecisions()
	if len(d) > 1 {
		return fmt.Errorf("election: consistency violated: elected %v", d)
	}
	if len(d) == 0 {
		return nil // nobody decided (all crashed): vacuously fine
	}
	for _, id := range identities {
		if id == d[0] {
			return nil
		}
	}
	return fmt.Errorf("election: validity violated: elected %v, proposals %v", d[0], identities)
}

// CheckWaitFree fails if a surviving process did not decide within
// bound steps.
func CheckWaitFree(res *sim.Result, bound int) error {
	if res.Halted {
		return fmt.Errorf("election: run halted with live processes %v", res.ReadyAtHalt)
	}
	for i, err := range res.Errors {
		if res.Crashed[i] {
			continue
		}
		if err != nil {
			return fmt.Errorf("election: process %d failed: %w", i, err)
		}
		if res.Steps[i] > bound {
			return fmt.Errorf("election: process %d took %d steps, bound %d", i, res.Steps[i], bound)
		}
	}
	return nil
}
