package election

import (
	"reflect"
	"testing"

	"repro/internal/explore"
	"repro/internal/sim"
)

// With no fault budget the degrading election must behave exactly like
// a correct election: every schedule (including single process crashes)
// elects consistently.
func TestDegradingHealthyIsCorrect(t *testing.T) {
	r := DegradeCensus(3, 2, 0, 2_000_000, nil)
	if !r.Baseline.Exhaustive {
		t.Fatalf("baseline not exhaustive: %+v", r.Baseline)
	}
	if r.Faulted.ViolationRuns != 0 {
		t.Fatalf("healthy degrading election violated: %+v", r.Faulted)
	}
	if r.FaultedRuns != 0 || r.SafetyRate() != 1 {
		t.Fatalf("zero-budget census reports faulted runs: %+v", r)
	}
}

// One injected crash fault makes the election degrade: most schedules
// still elect consistently (the fallback adopts published decisions),
// but some registers-only races disagree — quantifying the paper's
// point that the fallback cannot be unconditionally safe.
func TestDegradingOneCrashFault(t *testing.T) {
	r := DegradeCensus(3, 2, 1, 2_000_000, nil)
	if !r.Faulted.Exhaustive {
		t.Fatalf("faulted census not exhaustive: %+v", r.Faulted)
	}
	if r.FaultedRuns <= 0 {
		t.Fatalf("expected fault-containing runs, got %d", r.FaultedRuns)
	}
	if r.SafetyViolations == 0 {
		t.Fatalf("expected some degraded schedules to disagree (registers-only fallback cannot be safe): %+v", r)
	}
	if r.SafetyViolations >= r.FaultedRuns {
		t.Fatalf("degradation never preserved safety: %d violations of %d faulted runs", r.SafetyViolations, r.FaultedRuns)
	}
	if rate := r.SafetyRate(); rate <= 0 || rate >= 1 {
		t.Fatalf("safety rate %v out of (0,1)", rate)
	}
}

// The degrading census must be bit-identical across sequential,
// pruned, and pruned-parallel exploration, for every fault mode — the
// cross-engine guarantee extended to fault-injected trees. This is also
// the acceptance smoke for running a fault-budget census under -race.
func TestDegradingCensusEngineAgreement(t *testing.T) {
	modes := []sim.FaultMode{sim.FaultCrash, sim.FaultOmission, sim.FaultReset, sim.FaultGarble}
	seq := DegradeCensus(3, 2, 1, 2_000_000, modes)
	for _, tc := range []struct {
		name  string
		tunes []explore.Tune
	}{
		{"pruned", []explore.Tune{explore.WithPrune()}},
		{"pruned-budget", []explore.Tune{explore.WithPrune(), explore.WithPruneBudget(64)}},
		{"pruned-parallel", []explore.Tune{explore.WithPrune(), explore.WithWorkers(4)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := DegradeCensus(3, 2, 1, 2_000_000, modes, tc.tunes...)
			for _, pair := range []struct {
				name string
				a, b *explore.Census
			}{
				{"baseline", seq.Baseline, got.Baseline},
				{"faulted", seq.Faulted, got.Faulted},
			} {
				if pair.a.Complete != pair.b.Complete ||
					pair.a.Incomplete != pair.b.Incomplete ||
					pair.a.ViolationRuns != pair.b.ViolationRuns ||
					pair.a.Exhaustive != pair.b.Exhaustive ||
					!reflect.DeepEqual(pair.a.Outcomes, pair.b.Outcomes) {
					t.Errorf("%s census mismatch:\nseq: %+v\ngot: %+v", pair.name, pair.a, pair.b)
				}
			}
			if got.FaultedRuns != seq.FaultedRuns || got.SafetyViolations != seq.SafetyViolations {
				t.Errorf("report mismatch: seq %+v got %+v", seq, got)
			}
		})
	}
}
