package election_test

import (
	"errors"
	"testing"

	"repro/internal/election"
	"repro/internal/explore"
	"repro/internal/objects"
	"repro/internal/sim"
)

func multiBuilder(k1, k2 int) explore.Builder {
	return func() *sim.System {
		sys := sim.NewSystem()
		group := objects.NewCAS("group", k1)
		rank := objects.NewCAS("rank", k2)
		sys.Add(group)
		sys.Add(rank)
		for _, p := range election.MultiRegister(group, rank) {
			sys.Spawn(p)
		}
		return sys
	}
}

// TestMultiRegisterCapacityProduct: two registers elect the PRODUCT of
// their single-register capacities — (k₁−1)·(k₂−1) processes agree on a
// valid leader under many schedules (Burns–Cruz–Loui's multi-register
// claim, crash-free).
func TestMultiRegisterCapacityProduct(t *testing.T) {
	for _, tc := range []struct{ k1, k2 int }{{3, 3}, {3, 4}, {4, 4}, {5, 3}} {
		n := election.MultiRegisterCapacity(tc.k1, tc.k2)
		if n != (tc.k1-1)*(tc.k2-1) {
			t.Fatalf("capacity formula broken")
		}
		ids := make([]sim.Value, n)
		for i := range ids {
			ids[i] = i
		}
		for seed := int64(0); seed < 10; seed++ {
			sys := multiBuilder(tc.k1, tc.k2)()
			res, err := sys.Run(sim.Config{Scheduler: sim.Random(seed), MaxStepsPerProc: 5000})
			if err != nil {
				t.Fatal(err)
			}
			if err := election.CheckElection(res, ids); err != nil {
				t.Errorf("k1=%d k2=%d seed=%d: %v", tc.k1, tc.k2, seed, err)
			}
			for i, perr := range res.Errors {
				if perr != nil {
					t.Errorf("k1=%d k2=%d seed=%d: proc %d: %v", tc.k1, tc.k2, seed, i, perr)
				}
			}
		}
	}
}

// TestMultiRegisterBoundedSweep: a bounded DFS sweep over schedules of
// the 2×2 = 4-process instance elects consistently in every complete
// run reached (the losers' spin loops make the full schedule tree far
// too deep for exhaustion).
func TestMultiRegisterBoundedSweep(t *testing.T) {
	ids := []sim.Value{0, 1, 2, 3}
	c := explore.Run(multiBuilder(3, 3), explore.Options{MaxDepth: 120, MaxRuns: 15000}, func(res *sim.Result) error {
		return election.CheckElection(res, ids)
	})
	if len(c.Violations) != 0 {
		t.Errorf("violation: %s", explore.FormatSchedule(c.Violations[0].Schedule))
	}
	if c.Complete == 0 {
		t.Error("no complete runs")
	}
}

// TestMultiRegisterStallsOnCrash: the product construction is not
// wait-free — crash the whole winning group before it claims the rank
// register and every loser spins forever. This is exactly the
// wait-freedom gap separating Burns et al.'s model from the paper's.
func TestMultiRegisterStallsOnCrash(t *testing.T) {
	sys := multiBuilder(3, 3)()
	// Process 0 (group 0, rank 0) claims the group register (1 step),
	// reads it (1 step), then crashes before touching the rank register.
	// Process 1 is the other member of group 0: crash it too.
	res, err := sys.Run(sim.Config{
		Scheduler:       sim.ReplayThen([]sim.ProcID{0, 0}, sim.RoundRobin()),
		Faults:          sim.CrashAt(map[int][]sim.ProcID{2: {0, 1}}),
		MaxStepsPerProc: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decided()) != 0 {
		t.Errorf("losers decided despite an empty rank register: %v", res.Decisions())
	}
	stalled := 0
	for _, perr := range res.Errors {
		if errors.Is(perr, sim.ErrStepLimit) {
			stalled++
		}
	}
	if stalled == 0 {
		t.Error("no process hit the step limit; stall not demonstrated")
	}
}

// TestDirectRMWElection: the paper's conjecture exercised — an
// arbitrary k-valued read-modify-write register with a claim-if-empty
// transition elects k−1 processes on every schedule.
func TestDirectRMWElection(t *testing.T) {
	for k := 3; k <= 5; k++ {
		n := k - 1
		ids := make([]sim.Value, n)
		for i := range ids {
			ids[i] = i
		}
		b := func() *sim.System {
			sys := sim.NewSystem()
			progs, _ := election.DirectRMW(sys, "rmw", k, n)
			for _, p := range progs {
				sys.Spawn(p)
			}
			return sys
		}
		c := explore.Run(b, explore.Options{MaxCrashes: 1, MaxRuns: 150000}, func(res *sim.Result) error {
			if err := election.CheckElection(res, ids); err != nil {
				return err
			}
			return election.CheckWaitFree(res, 1)
		})
		if len(c.Violations) != 0 {
			t.Errorf("k=%d: violation on %s", k, explore.FormatSchedule(c.Violations[0].Schedule))
		}
	}
}

// TestDirectRMWHistoryMatchesWinner: the register's value history under
// the claim function is ⊥ followed by the winner's symbol, nothing else.
func TestDirectRMWHistoryMatchesWinner(t *testing.T) {
	sys := sim.NewSystem()
	progs, reg := election.DirectRMW(sys, "rmw", 4, 3)
	for _, p := range progs {
		sys.Spawn(p)
	}
	res, err := sys.Run(sim.Config{Scheduler: sim.Random(9)})
	if err != nil {
		t.Fatal(err)
	}
	h := reg.History()
	if len(h) != 2 || h[0] != objects.Bottom {
		t.Fatalf("history = %v, want [⊥ winner]", h)
	}
	want := int(h[1]) - 1
	for i, v := range res.Values {
		if v != want {
			t.Errorf("proc %d decided %v, register says %d", i, v, want)
		}
	}
}
