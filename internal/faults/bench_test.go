package faults_test

import (
	"fmt"
	"testing"

	"repro/internal/election"
	"repro/internal/explore"
	"repro/internal/faults"
	"repro/internal/objects"
	"repro/internal/sim"
)

// Fault-layer benchmarks, in two halves:
//
//   - wrap-overhead: the IDENTICAL election protocol (DirectCASOn) and
//     hence the identical schedule tree, censused over a bare
//     compare&swap register versus a faults.Wrap'd one with a zero
//     fault budget. The only difference between the two runs is the
//     wrapper's per-step dispatch (one latched-bool branch) and its
//     state folding, so the ratio IS the wrapper overhead — an earlier
//     version compared different protocols and mistook tree size for
//     wrapper cost. TestWrapOverheadRatio pins the ratio below 2×.
//   - fault-census: the degrading election census with a one-fault
//     budget, across the exploration engines — the workload
//     scripts/bench_faults.sh records as BENCH_faults.json. The budget
//     multiplies the tree (every ready process × every mode at every
//     prefix), so runs/s here tracks the real cost of fault-placement
//     enumeration, not just wrapper overhead.
//
// runs/s counts terminal runs accounted for per second, as in the
// explore benchmarks.

func degradingBuilder(k, n int) explore.Builder {
	return func() *sim.System {
		sys := sim.NewSystem()
		cas := faults.Wrap(objects.NewCAS("cas", k))
		sys.Add(cas)
		for _, p := range election.DegradingCAS(sys, cas, n) {
			sys.Spawn(p)
		}
		return sys
	}
}

// directBuilder runs DirectCAS over a bare register; wrappedBuilder
// runs the very same protocol over a Wrap'd one (DirectCASOn speaks the
// CAS alphabet against any object), so the two schedule trees are
// step-for-step identical.
func directBuilder(k, n int) explore.Builder {
	return func() *sim.System {
		sys := sim.NewSystem()
		cas := objects.NewCAS("cas", k)
		sys.Add(cas)
		for _, p := range election.DirectCAS(cas, n) {
			sys.Spawn(p)
		}
		return sys
	}
}

func wrappedBuilder(k, n int) explore.Builder {
	return func() *sim.System {
		sys := sim.NewSystem()
		cas := faults.Wrap(objects.NewCAS("cas", k))
		sys.Add(cas)
		for _, p := range election.DirectCASOn(cas, k, n) {
			sys.Spawn(p)
		}
		return sys
	}
}

func electionCheck(n int) func(*sim.Result) error {
	ids := make([]sim.Value, n)
	for i := range ids {
		ids[i] = i
	}
	return func(res *sim.Result) error { return election.CheckElection(res, ids) }
}

func benchCensus(b *testing.B, build explore.Builder, opts explore.Options, check func(*sim.Result) error) {
	b.Helper()
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := explore.Run(build, opts, check)
		total += c.Complete + c.Incomplete
	}
	b.StopTimer()
	if total == 0 {
		b.Fatal("census enumerated zero runs")
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "runs/s")
}

// wrapOverheadCase is the shared configuration of BenchmarkWrapOverhead
// and TestWrapOverheadRatio: one pruned crash-branching census of the
// same protocol, over the bare or the wrapped register.
const wrapK, wrapN = 4, 3

func wrapOverheadOpts() explore.Options {
	return explore.Options{MaxCrashes: 1}.With(explore.WithPrune())
}

func BenchmarkWrapOverhead(b *testing.B) {
	opts := wrapOverheadOpts()
	b.Run(fmt.Sprintf("bare/k=%d/n=%d", wrapK, wrapN), func(b *testing.B) {
		benchCensus(b, directBuilder(wrapK, wrapN), opts, electionCheck(wrapN))
	})
	b.Run(fmt.Sprintf("wrapped/k=%d/n=%d", wrapK, wrapN), func(b *testing.B) {
		benchCensus(b, wrappedBuilder(wrapK, wrapN), opts, electionCheck(wrapN))
	})
}

// TestWrapOverheadRatio pins the wrapper's fault-free overhead: the
// identical census over the wrapped register must cost less than 2× the
// bare one. The wrapper is one proxy dispatch plus a latched-bool
// check per step (and a two-field fold per fingerprinted decision
// point); anything pushing the ratio past 2× is a regression in that
// fast path.
func TestWrapOverheadRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed ratio check; skipped in -short")
	}
	opts := wrapOverheadOpts()
	check := electionCheck(wrapN)
	measure := func(build explore.Builder) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if c := explore.Run(build, opts, check); c.Complete == 0 {
					b.Fatal("census enumerated zero complete runs")
				}
			}
		})
		return float64(r.NsPerOp())
	}
	bare := measure(directBuilder(wrapK, wrapN))
	wrapped := measure(wrappedBuilder(wrapK, wrapN))
	ratio := wrapped / bare
	t.Logf("bare %.0f ns/census, wrapped %.0f ns/census, ratio %.2f×", bare, wrapped, ratio)
	if ratio >= 2 {
		t.Fatalf("wrapped census costs %.2f× the bare one, want < 2×", ratio)
	}
}

func BenchmarkFaultCensus(b *testing.B) {
	const k, n = 3, 2
	engines := []struct {
		name  string
		tunes []explore.Tune
	}{
		{"sequential", nil},
		{"pruned", []explore.Tune{explore.WithPrune()}},
		{"pruned-parallel", []explore.Tune{explore.WithPrune(), explore.WithWorkers(-1)}},
	}
	budgets := []struct {
		name  string
		tunes []explore.Tune
	}{
		{"faults=0", nil},
		{"faults=1-crash", []explore.Tune{explore.WithObjectFaults(1)}},
		{"faults=1-allmodes", []explore.Tune{explore.WithObjectFaults(1,
			sim.FaultCrash, sim.FaultOmission, sim.FaultReset, sim.FaultGarble)}},
	}
	for _, bud := range budgets {
		for _, eng := range engines {
			b.Run(fmt.Sprintf("degrading-le/k=%d/n=%d/%s/%s", k, n, bud.name, eng.name), func(b *testing.B) {
				opts := explore.Options{MaxCrashes: 1}.With(bud.tunes...).With(eng.tunes...)
				benchCensus(b, degradingBuilder(k, n), opts, electionCheck(n))
			})
		}
	}
}
