package faults_test

import (
	"fmt"
	"testing"

	"repro/internal/election"
	"repro/internal/explore"
	"repro/internal/faults"
	"repro/internal/objects"
	"repro/internal/sim"
)

// Fault-layer benchmarks, in two halves:
//
//   - wrap-overhead: the same healthy election census over a bare
//     compare&swap register versus a faults.Wrap'd one (fault budget 0),
//     isolating the per-step cost of the wrapper proxy and its StateKey
//     concatenation. This is the price every degradation experiment
//     pays even on fault-free schedules.
//   - fault-census: the degrading election census with a one-fault
//     budget, across the exploration engines — the workload
//     scripts/bench_faults.sh records as BENCH_faults.json. The budget
//     multiplies the tree (every ready process × every mode at every
//     prefix), so runs/s here tracks the real cost of fault-placement
//     enumeration, not just wrapper overhead.
//
// runs/s counts terminal runs accounted for per second, as in the
// explore benchmarks.

func degradingBuilder(k, n int) explore.Builder {
	return func() *sim.System {
		sys := sim.NewSystem()
		cas := faults.Wrap(objects.NewCAS("cas", k))
		sys.Add(cas)
		for _, p := range election.DegradingCAS(sys, cas, n) {
			sys.Spawn(p)
		}
		return sys
	}
}

func directBuilder(k, n int) explore.Builder {
	return func() *sim.System {
		sys := sim.NewSystem()
		cas := objects.NewCAS("cas", k)
		sys.Add(cas)
		for _, p := range election.DirectCAS(cas, n) {
			sys.Spawn(p)
		}
		return sys
	}
}

func electionCheck(n int) func(*sim.Result) error {
	ids := make([]sim.Value, n)
	for i := range ids {
		ids[i] = i
	}
	return func(res *sim.Result) error { return election.CheckElection(res, ids) }
}

func benchCensus(b *testing.B, build explore.Builder, opts explore.Options, check func(*sim.Result) error) {
	b.Helper()
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := explore.Run(build, opts, check)
		total += c.Complete + c.Incomplete
	}
	b.StopTimer()
	if total == 0 {
		b.Fatal("census enumerated zero runs")
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "runs/s")
}

func BenchmarkWrapOverhead(b *testing.B) {
	const k, n = 4, 3
	opts := explore.Options{MaxCrashes: 1}
	b.Run(fmt.Sprintf("bare/k=%d/n=%d", k, n), func(b *testing.B) {
		benchCensus(b, directBuilder(k, n), opts, electionCheck(n))
	})
	b.Run(fmt.Sprintf("wrapped/k=%d/n=%d", k, n), func(b *testing.B) {
		// Same exploration over the wrapped object with a zero fault
		// budget: the tree only differs by the degradation protocol's
		// publication steps, and no fault branch exists.
		benchCensus(b, degradingBuilder(k, n), opts, electionCheck(n))
	})
}

func BenchmarkFaultCensus(b *testing.B) {
	const k, n = 3, 2
	engines := []struct {
		name  string
		tunes []explore.Tune
	}{
		{"sequential", nil},
		{"pruned", []explore.Tune{explore.WithPrune()}},
		{"pruned-parallel", []explore.Tune{explore.WithPrune(), explore.WithWorkers(-1)}},
	}
	budgets := []struct {
		name  string
		tunes []explore.Tune
	}{
		{"faults=0", nil},
		{"faults=1-crash", []explore.Tune{explore.WithObjectFaults(1)}},
		{"faults=1-allmodes", []explore.Tune{explore.WithObjectFaults(1,
			sim.FaultCrash, sim.FaultOmission, sim.FaultReset, sim.FaultGarble)}},
	}
	for _, bud := range budgets {
		for _, eng := range engines {
			b.Run(fmt.Sprintf("degrading-le/k=%d/n=%d/%s/%s", k, n, bud.name, eng.name), func(b *testing.B) {
				opts := explore.Options{MaxCrashes: 1}.With(bud.tunes...).With(eng.tunes...)
				benchCensus(b, degradingBuilder(k, n), opts, electionCheck(n))
			})
		}
	}
}
