package faults_test

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/objects"
	"repro/internal/registers"
	"repro/internal/sim"
)

func TestCrashLatches(t *testing.T) {
	f := faults.Wrap(objects.NewCAS("c", 3))
	v, err := f.ApplyFault(0, objects.OpCAS, []sim.Value{objects.Bottom, objects.Symbol(1)}, sim.FaultCrash)
	if err != nil {
		t.Fatalf("crash fault returned error %v; the sentinel must be a value", err)
	}
	if !faults.IsFailed(v) {
		t.Fatalf("crash fault returned %v, want failed sentinel", v)
	}
	if !f.Failed() || f.Injected() != 1 {
		t.Fatalf("Failed=%v Injected=%d after crash, want true/1", f.Failed(), f.Injected())
	}
	// The latch holds for every later operation, healthy or faulted.
	if v, _ := f.Apply(1, sim.OpRead, nil); !faults.IsFailed(v) {
		t.Fatalf("read after crash returned %v, want failed sentinel", v)
	}
	if v, _ := f.ApplyFault(1, sim.OpRead, nil, sim.FaultReset); !faults.IsFailed(v) {
		t.Fatalf("faulted op after crash returned %v, want failed sentinel", v)
	}
	if !strings.HasPrefix(f.StateKey(), "failed|1|") {
		t.Fatalf("StateKey %q does not record the failure", f.StateKey())
	}
}

func TestOmissionDropsMutation(t *testing.T) {
	cas := objects.NewCAS("c", 3)
	f := faults.Wrap(cas)
	// An omitted c&s(⊥→0) reports success (prev = ⊥) but does not land.
	v, err := f.ApplyFault(0, objects.OpCAS, []sim.Value{objects.Bottom, objects.Symbol(1)}, sim.FaultOmission)
	if err != nil || v != objects.Bottom {
		t.Fatalf("omitted c&s returned (%v, %v), want (⊥, nil)", v, err)
	}
	if got, _ := f.Apply(1, sim.OpRead, nil); got != objects.Bottom {
		t.Fatalf("register holds %v after omitted c&s, want ⊥", got)
	}

	reg := registers.NewMWMR("r", 7)
	g := faults.Wrap(reg)
	if v, err := g.ApplyFault(0, sim.OpWrite, []sim.Value{99}, sim.FaultOmission); err != nil || v != nil {
		t.Fatalf("omitted write returned (%v, %v), want (nil, nil)", v, err)
	}
	if got, _ := g.Apply(1, sim.OpRead, nil); got != 7 {
		t.Fatalf("register holds %v after omitted write, want stale 7", got)
	}

	// Omission of a non-mutating op degrades to a healthy read.
	if got, _ := g.ApplyFault(1, sim.OpRead, nil, sim.FaultOmission); got != 7 {
		t.Fatalf("omitted read returned %v, want 7", got)
	}
}

func TestResetRevertsToInitial(t *testing.T) {
	cas := objects.NewCAS("c", 4)
	f := faults.Wrap(cas)
	if v, _ := f.Apply(0, objects.OpCAS, []sim.Value{objects.Bottom, objects.Symbol(2)}); v != objects.Bottom {
		t.Fatalf("healthy c&s through wrapper returned %v, want ⊥", v)
	}
	// The reset reverts the register to ⊥, then the read executes on the
	// reset state.
	if v, _ := f.ApplyFault(1, sim.OpRead, nil, sim.FaultReset); v != objects.Bottom {
		t.Fatalf("read under reset fault returned %v, want ⊥", v)
	}
	if h := cas.History(); len(h) != 1 || h[0] != objects.Bottom {
		t.Fatalf("history after reset is %v, want [⊥]", h)
	}
}

func TestGarbleWrongButInAlphabet(t *testing.T) {
	cas := objects.NewCAS("c", 4)
	f := faults.Wrap(cas)
	// Register holds ⊥; a garbled c&s(0→1) claims the swap landed (it
	// returns its own "from" test passing) while the true prev was ⊥.
	v, err := f.ApplyFault(0, objects.OpCAS, []sim.Value{objects.Symbol(1), objects.Symbol(2)}, sim.FaultGarble)
	if err != nil || v != objects.Symbol(2) {
		t.Fatalf("garbled c&s returned (%v, %v), want (Symbol(2), nil)", v, err)
	}
	// The underlying operation really executed: the swap failed, the
	// register still holds ⊥.
	if got, _ := f.Apply(1, sim.OpRead, nil); got != objects.Bottom {
		t.Fatalf("register holds %v after failed garbled c&s, want ⊥", got)
	}
	// A garbled read has no argument alphabet: it answers the sentinel.
	if v, _ := f.ApplyFault(1, sim.OpRead, nil, sim.FaultGarble); !faults.IsFailed(v) {
		t.Fatalf("garbled read returned %v, want failed sentinel", v)
	}
	if f.Failed() {
		t.Fatal("garble must not latch failure")
	}
}

func TestWrapRequiresStateKeyer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Wrap of a non-StateKeyer object did not panic")
		}
	}()
	faults.Wrap(unkeyed{})
}

type unkeyed struct{}

func (unkeyed) Name() string { return "bare" }
func (unkeyed) Apply(sim.ProcID, sim.OpKind, []sim.Value) (sim.Value, error) {
	return nil, nil
}

// TestTryApplyDegradation runs a crash-faulted object through the full
// simulator: a deterministic plan kills the object at step 1, and the
// processes detect it via TryApply and fall back to a register.
func TestTryApplyDegradation(t *testing.T) {
	sys := sim.NewSystem()
	cas := faults.Wrap(objects.NewCAS("c", 3))
	fb := registers.NewMWMR("fb", nil)
	sys.Add(cas)
	sys.Add(fb)
	sys.SpawnN(2, func(id sim.ProcID) sim.Program {
		return func(e *sim.Env) (sim.Value, error) {
			prev, ok := faults.TryApply(e, cas, objects.OpCAS, objects.Bottom, objects.Symbol(int(id)+1))
			if ok {
				if prev == objects.Bottom {
					return int(id), nil
				}
				return int(prev.(objects.Symbol)) - 1, nil
			}
			// Object failed: race on the fallback register instead.
			if v := fb.Read(e); v != nil {
				return v, nil
			}
			fb.Write(e, int(id))
			return int(id), nil
		}
	})
	res, err := sys.Run(sim.Config{
		ObjectFaults: sim.FaultAtSteps(map[int]sim.FaultMode{1: sim.FaultCrash}),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin: step 0 is proc 0's c&s (healthy, wins with ⊥), step 1
	// is proc 1's c&s (object crashes under it) → proc 1 degrades.
	if res.Errors[0] != nil || res.Errors[1] != nil {
		t.Fatalf("process errors: %v", res.Errors)
	}
	if res.Values[0] != 0 {
		t.Fatalf("proc 0 decided %v, want 0 (healthy c&s win)", res.Values[0])
	}
	if res.Values[1] != 1 {
		t.Fatalf("proc 1 decided %v, want 1 (register fallback)", res.Values[1])
	}
	if !cas.Failed() || cas.Injected() != 1 {
		t.Fatalf("wrapper state Failed=%v Injected=%d, want true/1", cas.Failed(), cas.Injected())
	}
}

// TestNoPlanIsTransparent locks in the proxy property: a Faulty with no
// fault plan is bit-identical to the bare object, fingerprint included.
func TestNoPlanIsTransparent(t *testing.T) {
	run := func(wrap bool) uint64 {
		sys := sim.NewSystem()
		var obj sim.Object = objects.NewCAS("c", 4)
		if wrap {
			obj = faults.Wrap(obj)
		}
		sys.Add(obj)
		sys.SpawnN(3, func(id sim.ProcID) sim.Program {
			return func(e *sim.Env) (sim.Value, error) {
				prev := e.Apply(obj, objects.OpCAS, objects.Bottom, objects.Symbol(int(id)+1))
				return prev, nil
			}
		})
		res, err := sys.Run(sim.Config{Fingerprint: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.FingerprintOK {
			t.Fatal("fingerprint unavailable; every object should be a StateKeyer")
		}
		return res.Fingerprint
	}
	// Note: the wrapper prefixes its own fault state to the inner key, so
	// fingerprints differ between wrapped and bare systems by design.
	// Transparency is checked on two wrapped runs and on decisions.
	if a, b := run(true), run(true); a != b {
		t.Fatalf("two identical wrapped runs fingerprint differently: %x vs %x", a, b)
	}
	if a, b := run(false), run(false); a != b {
		t.Fatalf("two identical bare runs fingerprint differently: %x vs %x", a, b)
	}
}
