// Package faults is the object-level fault-injection layer of the lab.
// The paper delimits an object's power by shrinking its value alphabet;
// the natural robustness companion — what this package measures — is
// what happens when base objects *misbehave* rather than merely shrink
// (cf. Gelashvili et al., "On the Importance of Registers for
// Computability", where removing registers collapses the hierarchy, and
// Mostéfaoui–Perrin–Raynal's object whose parameter sweeps the whole
// consensus hierarchy; see PAPERS.md).
//
// Faulty wraps any fingerprintable sim.Object and implements the four
// fault modes of sim.FaultMode:
//
//   - crash: the object stops responding; every operation from the
//     fault on answers the ErrObjectFailed sentinel VALUE (not an
//     error through sim's error channel, which would kill the calling
//     process — a failed object is a runtime condition the algorithm
//     layer is supposed to detect and degrade around).
//   - omission: a write or c&s is silently dropped while the caller is
//     told it succeeded; later reads return stale values.
//   - reset: the object reverts to its initial state (sim.Resettable)
//     and the operation then executes on the reset state.
//   - garble: the operation takes effect but the response is replaced
//     by a wrong value from the operation's own argument alphabet.
//
// Which operations fault is decided by a sim.ObjectFaultPlan wired
// through sim.Config.ObjectFaults; the explore package enumerates fault
// placements exhaustively via Options.ObjectFaults, exactly like crash
// placements. All modes are deterministic, so censuses stay exact.
package faults

import (
	"errors"
	"fmt"

	"repro/internal/objects"
	"repro/internal/sim"
)

// ErrObjectFailed is the sentinel a crashed object answers. It is
// returned as the operation's result VALUE with a nil error: callers
// detect it with IsFailed (or TryApply) and fall back; protocols that
// ignore it and type-assert the result will panic, which is the correct
// loudness for a protocol without a degradation path.
var ErrObjectFailed = errors.New("faults: shared object failed")

// IsFailed reports whether an operation's result is the failed-object
// sentinel.
func IsFailed(v sim.Value) bool {
	err, ok := v.(error)
	return ok && errors.Is(err, ErrObjectFailed)
}

// TryApply performs one gated operation and splits the failed-object
// sentinel out of the result: ok is false iff the object has failed.
// This is the call degradation-aware protocols use on fault-wrapped
// objects.
func TryApply(e *sim.Env, obj sim.Object, op sim.OpKind, args ...sim.Value) (v sim.Value, ok bool) {
	v = e.Apply(obj, op, args...)
	if IsFailed(v) {
		return nil, false
	}
	return v, true
}

// Faulty wraps a shared object with injectable fault behavior. It is a
// transparent proxy while healthy: same name, same operations, same
// results. Faults arrive only through ApplyFault (routed by the runner
// from the run's ObjectFaultPlan), so a Faulty with no plan behaves
// bit-identically to its inner object.
type Faulty struct {
	inner sim.Object
	keyer sim.StateKeyer
	// folder is inner's allocation-free fold, resolved once at Wrap so
	// the per-decision FoldState pays no type assertion; nil when the
	// inner object only implements the string StateKey.
	folder sim.StateFolder
	// failed is latched by a crash fault: the object answers the
	// sentinel forever after.
	failed bool
	// injected counts faults absorbed, part of the state key (two
	// objects differing in fault history are conservatively treated as
	// different states by the pruner).
	injected int
}

var (
	_ sim.Object      = (*Faulty)(nil)
	_ sim.Faultable   = (*Faulty)(nil)
	_ sim.StateKeyer  = (*Faulty)(nil)
	_ sim.StateFolder = (*Faulty)(nil)
)

// Wrap returns obj with injectable faults. The inner object must be
// fingerprintable (sim.StateKeyer) — every object in this repository is
// — so that fault-wrapped systems stay prunable and a non-keyable
// wrapper can never silently weaken a pruned census; Wrap panics
// otherwise (static protocol structure, so this is a programming
// error).
func Wrap(obj sim.Object) *Faulty {
	k, ok := obj.(sim.StateKeyer)
	if !ok {
		panic(fmt.Sprintf("faults: object %q is not fingerprintable (sim.StateKeyer)", obj.Name()))
	}
	folder, _ := obj.(sim.StateFolder)
	return &Faulty{inner: obj, keyer: k, folder: folder}
}

// Name implements sim.Object.
func (f *Faulty) Name() string { return f.inner.Name() }

// Inner returns the wrapped object, for inspection after a run.
func (f *Faulty) Inner() sim.Object { return f.inner }

// Failed reports whether a crash fault has been injected.
func (f *Faulty) Failed() bool { return f.failed }

// Injected returns the number of faults absorbed so far.
func (f *Faulty) Injected() int { return f.injected }

// Apply implements sim.Object: healthy operations proxy to the inner
// object; after a crash fault every operation answers the sentinel.
//
// This is the wrapper's whole fault-free fast path: one latched-bool
// branch, then the inner Apply — no plan lookup (the runner consults
// the ObjectFaultPlan and routes to ApplyFault only on steps where a
// fault actually fires), no allocation, no formatting. A Faulty on a
// fault-free step therefore costs one extra predictable branch over
// the bare object; BenchmarkWrapOverhead asserts the end-to-end ratio
// stays under 2×.
func (f *Faulty) Apply(caller sim.ProcID, op sim.OpKind, args []sim.Value) (sim.Value, error) {
	if f.failed {
		return ErrObjectFailed, nil
	}
	return f.inner.Apply(caller, op, args)
}

// ApplyFault implements sim.Faultable. Modes the inner object cannot
// express (omission of a non-mutating op, reset of a non-Resettable)
// degrade to a healthy Apply — injection may weaken an operation but
// never invents protocol-level illegality.
func (f *Faulty) ApplyFault(caller sim.ProcID, op sim.OpKind, args []sim.Value, mode sim.FaultMode) (sim.Value, error) {
	if f.failed {
		return ErrObjectFailed, nil
	}
	f.injected++
	switch mode {
	case sim.FaultCrash:
		f.failed = true
		return ErrObjectFailed, nil
	case sim.FaultOmission:
		switch op {
		case sim.OpWrite:
			// Dropped, reported as a successful write.
			return nil, nil
		case objects.OpCAS:
			if len(args) == 2 {
				// Dropped, reported as a successful c&s: the caller sees
				// prev == old and believes its value landed.
				return args[0], nil
			}
		}
		return f.inner.Apply(caller, op, args)
	case sim.FaultReset:
		if r, ok := f.inner.(sim.Resettable); ok {
			r.ResetObject()
		}
		return f.inner.Apply(caller, op, args)
	case sim.FaultGarble:
		v, err := f.inner.Apply(caller, op, args)
		if err != nil {
			return v, err
		}
		if len(args) > 0 {
			// Wrong-but-in-alphabet response: echo the last argument
			// (for c&s(a→b) that is b, claiming the swap landed even
			// when prev ≠ a). Deterministic, so schedules enumerate.
			return args[len(args)-1], nil
		}
		// An argument-less operation (a read) has no argument alphabet
		// to draw from; garble it to the failure sentinel.
		return ErrObjectFailed, nil
	default:
		return f.inner.Apply(caller, op, args)
	}
}

// CanRestore implements sim.RestoreProber: a Faulty is snapshottable
// exactly when its inner object is.
func (f *Faulty) CanRestore() bool {
	_, ok := f.inner.(sim.Restorable)
	return ok
}

// SaveState implements sim.Restorable by delegating to the inner
// object, prefixed with the wrapper's own fault state. Callers check
// CanRestore (sim's Snapshotable does) before relying on it.
func (f *Faulty) SaveState(s *sim.Snap) {
	s.Bool(f.failed)
	s.Int(f.injected)
	f.inner.(sim.Restorable).SaveState(s)
}

// RestoreState implements sim.Restorable.
func (f *Faulty) RestoreState(r *sim.SnapReader) {
	f.failed = r.Bool()
	f.injected = r.Int()
	f.inner.(sim.Restorable).RestoreState(r)
}

// StateKey implements sim.StateKeyer. Fault state (failed latch and
// injection count) is part of the key: states differing in fault
// history are conservatively distinct, which can only weaken pruning,
// never its soundness.
func (f *Faulty) StateKey() string {
	st := "ok"
	if f.failed {
		st = "failed"
	}
	return fmt.Sprintf("%s|%d|%s", st, f.injected, f.keyer.StateKey())
}

// FoldState implements sim.StateFolder, the allocation-free analogue
// of StateKey used on the exploration hot path: fault state folds
// binary and the inner object folds itself when it can (every object
// in this repository can; the string fallback keeps Wrap total).
func (f *Faulty) FoldState(h sim.Hash) sim.Hash {
	h = h.FoldBool(f.failed).FoldInt(f.injected)
	if f.folder != nil {
		return f.folder.FoldState(h)
	}
	return h.FoldString(f.keyer.StateKey())
}
