package consensus

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/objects"
	"repro/internal/registers"
	"repro/internal/sim"
)

// DegradingCASProtocol is CASProtocol hardened against object failure:
// obj is a compare&swap-style object — normally a faults.Wrap around
// objects.NewCAS — and a process that observes it failed (the
// ErrObjectFailed sentinel) degrades to registers only instead of
// crashing: it adopts any decision already published by a
// compare&swap-path decider, else falls back to the RWAttempt rule
// (decide the minimum announced proposal). Deciders on every path
// publish before returning, so the fallback disagrees only on the
// schedules where FLP says it must be able to. Unlike CASProtocol the
// capacity precondition n ≤ k−1 is the caller's job — obj is opaque
// here, and the hierarchy checks deliberately probe over-capacity.
func DegradingCASProtocol(sys *sim.System, obj sim.Object, proposals []sim.Value) []sim.Program {
	n := len(proposals)
	ann := registers.NewArray(sys, obj.Name()+".ann", n, nil)
	dec := registers.NewArray(sys, obj.Name()+".dec", n, nil)
	progs := make([]sim.Program, n)
	for i := 0; i < n; i++ {
		i := i
		progs[i] = func(e *sim.Env) (sim.Value, error) {
			decide := func(v sim.Value) (sim.Value, error) {
				dec.Write(e, v)
				return v, nil
			}
			ann.Write(e, proposals[i])
			if _, ok := faults.TryApply(e, obj, objects.OpCAS, objects.Bottom, objects.Symbol(i+1)); ok {
				if v, ok2 := faults.TryApply(e, obj, sim.OpRead); ok2 {
					if s, isSym := v.(objects.Symbol); isSym && s != objects.Bottom {
						winner := int(s) - 1
						if winner >= 0 && winner < n {
							return decide(ann.Read(e, winner))
						}
					}
					// Garbled/omitted response with no usable owner:
					// degrade rather than decide garbage.
				}
			}
			// Degraded path: adopt an authoritative published decision if
			// any is visible, else the level-1 minimum-announced rule.
			for j := 0; j < n; j++ {
				if v := dec.Read(e, j); v != nil {
					return decide(v)
				}
			}
			best := proposals[i]
			for _, v := range ann.Collect(e) {
				if v == nil {
					continue
				}
				if fmt.Sprint(v) < fmt.Sprint(best) {
					best = v
				}
			}
			return decide(best)
		}
	}
	return progs
}
