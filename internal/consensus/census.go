package consensus

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/explore"
	"repro/internal/objects"
	"repro/internal/sim"
)

// CASSymmetric is the process-symmetry spec of the canonical CAS
// consensus census: proposals are 100+i for process i, claimed CAS
// symbols are i+1, and each process announces its proposal in its own
// SWMR cell "cas.ann[i]". Renaming the processes by π therefore
// renames proposal 100+i to 100+π(i), symbol i+1 to π(i)+1, and cell
// "cas.ann[i]" to "cas.ann[π(i)]"; the shared "cas" register keeps its
// name. The spec is tied to those conventions — a census with a
// different proposal scheme must build its own spec.
func CASSymmetric(n int) *sim.Symmetry {
	const pre = "cas.ann["
	return &sim.Symmetry{
		Perms: sim.FullPerms(n),
		RenameValue: func(v sim.Value, perm []sim.ProcID) sim.Value {
			switch x := v.(type) {
			case int:
				if x >= 100 && x < 100+n {
					return 100 + int(perm[x-100])
				}
			case objects.Symbol:
				if s := int(x); s >= 1 && s <= n {
					return objects.Symbol(perm[s-1] + 1)
				}
			}
			return v
		},
		RenameObject: func(name string, perm []sim.ProcID) string {
			if strings.HasPrefix(name, pre) && strings.HasSuffix(name, "]") {
				if i, err := strconv.Atoi(name[len(pre) : len(name)-1]); err == nil && i >= 0 && i < n {
					return fmt.Sprintf("cas.ann[%d]", perm[i])
				}
			}
			return name
		},
		RenameOutcome: func(key string, perm []sim.ProcID) string {
			return sim.RenameIntKey(key, func(v int) int {
				if v >= 100 && v < 100+n {
					return 100 + int(perm[v-100])
				}
				return v
			})
		},
	}
}

// CensusCAS exhaustively censuses the canonical compare&swap-(k)
// n-consensus protocol (propose ⊥→your symbol, read the winner),
// checking agreement and validity on every complete run with up to one
// crash. tunes forward exploration tuning (explore.WithPrune,
// explore.WithWorkers) to the census. The builder declares
// CASSymmetric, so explore.WithSymmetry() folds process-permutation
// classes of the walk.
func CensusCAS(k, n, maxRuns int, tunes ...explore.Tune) *explore.Census {
	props := make([]sim.Value, n)
	for i := range props {
		props[i] = 100 + i
	}
	spec := CASSymmetric(n)
	b := func() *sim.System {
		sys := sim.NewSystem()
		cas := objects.NewCAS("cas", k)
		sys.Add(cas)
		// Machine form: direct-dispatch fast path, bit-identical to
		// CASProtocol (cross-checked by the equivalence tests).
		for _, m := range CASMachines(sys, cas, props) {
			sys.SpawnMachine(m)
		}
		sys.DeclareSymmetry(spec)
		return sys
	}
	opts := explore.Options{MaxCrashes: 1, MaxRuns: maxRuns}.With(tunes...)
	return explore.Run(b, opts, func(res *sim.Result) error {
		if err := CheckAgreement(res); err != nil {
			return err
		}
		return CheckValidity(res, props)
	})
}

// TASSymmetric is the process-symmetry spec of the canonical test&set
// 2-consensus census: proposals are 100+i for process i and each
// process announces in its own SWMR cell "t.ann[i]". The test&set bit
// itself stores no identity, so renaming the two processes renames
// proposal 100+i to 100+π(i) and cell "t.ann[i]" to "t.ann[π(i)]" and
// nothing else. Tied to those conventions, like CASSymmetric.
func TASSymmetric() *sim.Symmetry {
	const n = 2
	const pre = "t.ann["
	renameProp := func(v int, perm []sim.ProcID) int {
		if v >= 100 && v < 100+n {
			return 100 + int(perm[v-100])
		}
		return v
	}
	return &sim.Symmetry{
		Perms: sim.FullPerms(n),
		RenameValue: func(v sim.Value, perm []sim.ProcID) sim.Value {
			if x, ok := v.(int); ok {
				return renameProp(x, perm)
			}
			return v
		},
		RenameObject: func(name string, perm []sim.ProcID) string {
			if strings.HasPrefix(name, pre) && strings.HasSuffix(name, "]") {
				if i, err := strconv.Atoi(name[len(pre) : len(name)-1]); err == nil && i >= 0 && i < n {
					return fmt.Sprintf("t.ann[%d]", perm[i])
				}
			}
			return name
		},
		RenameOutcome: func(key string, perm []sim.ProcID) string {
			return sim.RenameIntKey(key, func(v int) int { return renameProp(v, perm) })
		},
	}
}

// CensusTAS exhaustively censuses the canonical test&set 2-consensus
// protocol (announce, t&s, winner keeps its proposal, loser adopts),
// checking agreement and validity on every complete run with up to one
// crash. The builder declares TASSymmetric, so explore.WithSymmetry()
// folds the two-process permutation classes of the walk.
func CensusTAS(maxRuns int, tunes ...explore.Tune) *explore.Census {
	props := [2]sim.Value{100, 101}
	spec := TASSymmetric()
	b := func() *sim.System {
		sys := sim.NewSystem()
		ts := objects.NewTestAndSet("t")
		sys.Add(ts)
		// Machine form: direct-dispatch fast path, bit-identical to
		// TASProtocol (cross-checked by the equivalence tests).
		for _, m := range TASMachines(sys, ts, props) {
			sys.SpawnMachine(m)
		}
		sys.DeclareSymmetry(spec)
		return sys
	}
	opts := explore.Options{MaxCrashes: 1, MaxRuns: maxRuns}.With(tunes...)
	return explore.Run(b, opts, func(res *sim.Result) error {
		if err := CheckAgreement(res); err != nil {
			return err
		}
		return CheckValidity(res, props[:])
	})
}

// SwapSymmetric is the process-symmetry spec of the swap n-consensus
// census: proposals are 100+i, process i swaps its own id i into the
// shared register (so stored ids 0..n-1 rename through the
// permutation), and each process announces in its own SWMR cell
// "s.ann[i]". Tied to those conventions, like CASSymmetric.
func SwapSymmetric(n int) *sim.Symmetry {
	const pre = "s.ann["
	return &sim.Symmetry{
		Perms: sim.FullPerms(n),
		RenameValue: func(v sim.Value, perm []sim.ProcID) sim.Value {
			if x, ok := v.(int); ok {
				switch {
				case x >= 0 && x < n:
					return int(perm[x])
				case x >= 100 && x < 100+n:
					return 100 + int(perm[x-100])
				}
			}
			return v
		},
		RenameObject: func(name string, perm []sim.ProcID) string {
			if strings.HasPrefix(name, pre) && strings.HasSuffix(name, "]") {
				if i, err := strconv.Atoi(name[len(pre) : len(name)-1]); err == nil && i >= 0 && i < n {
					return fmt.Sprintf("s.ann[%d]", perm[i])
				}
			}
			return name
		},
		RenameOutcome: func(key string, perm []sim.ProcID) string {
			return sim.RenameIntKey(key, func(v int) int {
				if v >= 100 && v < 100+n {
					return 100 + int(perm[v-100])
				}
				return v
			})
		},
	}
}

// CensusSwap exhaustively censuses swap n-consensus (announce, swap
// your id in, nil-getter wins, losers adopt — the witness protocol
// that solves n = 2 and is refuted at n = 3), checking agreement and
// validity on every complete run with up to one crash. The builder
// declares SwapSymmetric, so explore.WithSymmetry() folds the
// process-permutation classes of the walk.
func CensusSwap(n, maxRuns int, tunes ...explore.Tune) *explore.Census {
	props := make([]sim.Value, n)
	for i := range props {
		props[i] = 100 + i
	}
	spec := SwapSymmetric(n)
	b := func() *sim.System {
		sys := sim.NewSystem()
		sw := objects.NewSwap("s", nil)
		sys.Add(sw)
		// Machine form: direct-dispatch fast path, bit-identical to the
		// witness Program (cross-checked by the equivalence tests).
		for _, m := range SwapMachines(sys, sw, props) {
			sys.SpawnMachine(m)
		}
		sys.DeclareSymmetry(spec)
		return sys
	}
	opts := explore.Options{MaxCrashes: 1, MaxRuns: maxRuns}.With(tunes...)
	return explore.Run(b, opts, func(res *sim.Result) error {
		if err := CheckAgreement(res); err != nil {
			return err
		}
		return CheckValidity(res, props)
	})
}

// QueueSymmetric is the process-symmetry spec of the queue 2-consensus
// census: proposals are 100+i and each process announces in its own
// SWMR cell "q.ann[i]". The queue's pre-loaded "winner" token carries
// no process identity (strings pass through RenameValue untouched), so
// renaming the two processes renames proposal 100+i to 100+π(i) and
// cell "q.ann[i]" to "q.ann[π(i)]" and nothing else. Tied to those
// conventions, like TASSymmetric.
func QueueSymmetric() *sim.Symmetry {
	const n = 2
	const pre = "q.ann["
	renameProp := func(v int, perm []sim.ProcID) int {
		if v >= 100 && v < 100+n {
			return 100 + int(perm[v-100])
		}
		return v
	}
	return &sim.Symmetry{
		Perms: sim.FullPerms(n),
		RenameValue: func(v sim.Value, perm []sim.ProcID) sim.Value {
			if x, ok := v.(int); ok {
				return renameProp(x, perm)
			}
			return v
		},
		RenameObject: func(name string, perm []sim.ProcID) string {
			if strings.HasPrefix(name, pre) && strings.HasSuffix(name, "]") {
				if i, err := strconv.Atoi(name[len(pre) : len(name)-1]); err == nil && i >= 0 && i < n {
					return fmt.Sprintf("q.ann[%d]", perm[i])
				}
			}
			return name
		},
		RenameOutcome: func(key string, perm []sim.ProcID) string {
			return sim.RenameIntKey(key, func(v int) int { return renameProp(v, perm) })
		},
	}
}

// CensusQueue exhaustively censuses the queue 2-consensus protocol
// (announce, dequeue, token-holder keeps its proposal, the other
// adopts), checking agreement and validity on every complete run with
// up to one crash. The builder declares QueueSymmetric, so
// explore.WithSymmetry() folds the two-process permutation classes.
func CensusQueue(maxRuns int, tunes ...explore.Tune) *explore.Census {
	props := [2]sim.Value{100, 101}
	spec := QueueSymmetric()
	b := func() *sim.System {
		sys := sim.NewSystem()
		q := objects.NewQueue("q", "winner")
		sys.Add(q)
		// Machine form: direct-dispatch fast path, bit-identical to
		// QueueProtocol (cross-checked by the equivalence tests).
		for _, m := range QueueMachines(sys, q, props) {
			sys.SpawnMachine(m)
		}
		sys.DeclareSymmetry(spec)
		return sys
	}
	opts := explore.Options{MaxCrashes: 1, MaxRuns: maxRuns}.With(tunes...)
	return explore.Run(b, opts, func(res *sim.Result) error {
		if err := CheckAgreement(res); err != nil {
			return err
		}
		return CheckValidity(res, props[:])
	})
}

// StickyBitSymmetric is the process-symmetry spec of the sticky-bit
// n-consensus census: proposals are 100+i and the only shared object is
// the sticky bit, whose stored (stuck) value is renamed through the
// bit's own PermStateFolder — no per-process cells exist, so no
// RenameObject is needed.
func StickyBitSymmetric(n int) *sim.Symmetry {
	renameProp := func(v int, perm []sim.ProcID) int {
		if v >= 100 && v < 100+n {
			return 100 + int(perm[v-100])
		}
		return v
	}
	return &sim.Symmetry{
		Perms: sim.FullPerms(n),
		RenameValue: func(v sim.Value, perm []sim.ProcID) sim.Value {
			if x, ok := v.(int); ok {
				return renameProp(x, perm)
			}
			return v
		},
		RenameOutcome: func(key string, perm []sim.ProcID) string {
			return sim.RenameIntKey(key, func(v int) int { return renameProp(v, perm) })
		},
	}
}

// CensusStickyBit exhaustively censuses sticky-bit n-consensus — every
// process sticky-writes its proposal and decides the returned (stuck)
// value, the paper's universal single-object consensus — checking
// agreement and validity with up to one crash. The builder declares
// StickyBitSymmetric for explore.WithSymmetry().
func CensusStickyBit(n, maxRuns int, tunes ...explore.Tune) *explore.Census {
	props := make([]sim.Value, n)
	for i := range props {
		props[i] = 100 + i
	}
	spec := StickyBitSymmetric(n)
	b := func() *sim.System {
		sys := sim.NewSystem()
		sb := objects.NewStickyBit("s")
		sys.Add(sb)
		// Machine form: direct-dispatch fast path, bit-identical to the
		// one-line Program (cross-checked by the equivalence tests).
		for _, m := range StickyBitMachines(sb, props) {
			sys.SpawnMachine(m)
		}
		sys.DeclareSymmetry(spec)
		return sys
	}
	opts := explore.Options{MaxCrashes: 1, MaxRuns: maxRuns}.With(tunes...)
	return explore.Run(b, opts, func(res *sim.Result) error {
		if err := CheckAgreement(res); err != nil {
			return err
		}
		return CheckValidity(res, props)
	})
}
