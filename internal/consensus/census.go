package consensus

import (
	"repro/internal/explore"
	"repro/internal/objects"
	"repro/internal/sim"
)

// CensusCAS exhaustively censuses the canonical compare&swap-(k)
// n-consensus protocol (propose ⊥→your symbol, read the winner),
// checking agreement and validity on every complete run with up to one
// crash. tunes forward exploration tuning (explore.WithPrune,
// explore.WithWorkers) to the census.
func CensusCAS(k, n, maxRuns int, tunes ...explore.Tune) *explore.Census {
	props := make([]sim.Value, n)
	for i := range props {
		props[i] = 100 + i
	}
	b := func() *sim.System {
		sys := sim.NewSystem()
		cas := objects.NewCAS("cas", k)
		sys.Add(cas)
		for _, p := range CASProtocol(sys, cas, props) {
			sys.Spawn(p)
		}
		return sys
	}
	opts := explore.Options{MaxCrashes: 1, MaxRuns: maxRuns}.With(tunes...)
	return explore.Run(b, opts, func(res *sim.Result) error {
		if err := CheckAgreement(res); err != nil {
			return err
		}
		return CheckValidity(res, props)
	})
}
