package consensus

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/objects"
	"repro/internal/registers"
	"repro/internal/sim"
)

// Machine (direct-dispatch) ports of the consensus protocols. Each
// machine performs exactly the op sequence of its Program twin —
// same objects, same order, same arguments — so goroutine and machine
// executions of the same census are bit-identical; the equivalence
// tests in internal/explore enforce that under -race.

// duelMachine is the shared shape of the three 2-process "oracle"
// protocols (test&set, fetch&add, queue): announce, consult the oracle
// once, keep your proposal if you won, adopt the other announcement if
// you lost.
type duelMachine struct {
	ann    *registers.Array
	props  [2]sim.Value
	i      int
	oracle sim.MachineOp
	won    func(sim.Value) bool
	pc     int
}

var _ sim.Machine = (*duelMachine)(nil)

// Pending implements sim.Machine.
func (m *duelMachine) Pending() sim.MachineOp {
	switch m.pc {
	case 0:
		return sim.MachineOp{Obj: m.ann.Reg(m.i), Op: sim.OpWrite, NArgs: 1, Args: [2]sim.Value{m.props[m.i]}}
	case 1:
		return m.oracle
	default:
		return sim.MachineOp{Obj: m.ann.Reg(1 - m.i), Op: sim.OpRead}
	}
}

// Finish implements sim.Machine.
func (m *duelMachine) Finish(v sim.Value) (bool, sim.Value, error) {
	switch m.pc {
	case 0:
		m.pc = 1
		return false, nil, nil
	case 1:
		if m.won(v) {
			return true, m.props[m.i], nil
		}
		m.pc = 2
		return false, nil, nil
	default:
		return true, v, nil
	}
}

// Save implements sim.Machine.
func (m *duelMachine) Save(s *sim.Snap) { s.Int(m.pc) }

// Restore implements sim.Machine.
func (m *duelMachine) Restore(r *sim.SnapReader) { m.pc = r.Int() }

// TASMachines is TASProtocol in machine form: announce, test&set, the
// winner keeps its proposal, the loser adopts the other announcement.
func TASMachines(sys *sim.System, ts *objects.TestAndSet, proposals [2]sim.Value) []sim.Machine {
	ann := registers.NewArray(sys, ts.Name()+".ann", 2, nil)
	ms := make([]sim.Machine, 2)
	for i := 0; i < 2; i++ {
		ms[i] = &duelMachine{
			ann: ann, props: proposals, i: i,
			oracle: sim.MachineOp{Obj: ts, Op: objects.OpTAS},
			won:    func(v sim.Value) bool { return v.(bool) },
		}
	}
	return ms
}

// FetchAddMachines is FetchAddProtocol in machine form: ticket 0 wins.
func FetchAddMachines(sys *sim.System, fa *objects.FetchAdd, proposals [2]sim.Value) []sim.Machine {
	ann := registers.NewArray(sys, fa.Name()+".ann", 2, nil)
	ms := make([]sim.Machine, 2)
	for i := 0; i < 2; i++ {
		ms[i] = &duelMachine{
			ann: ann, props: proposals, i: i,
			oracle: sim.MachineOp{Obj: fa, Op: objects.OpFetchAdd, NArgs: 1, Args: [2]sim.Value{1}},
			won:    func(v sim.Value) bool { return v.(int) == 0 },
		}
	}
	return ms
}

// QueueMachines is QueueProtocol in machine form: whoever dequeues the
// pre-loaded "winner" token wins.
func QueueMachines(sys *sim.System, q *objects.Queue, proposals [2]sim.Value) []sim.Machine {
	ann := registers.NewArray(sys, q.Name()+".ann", 2, nil)
	ms := make([]sim.Machine, 2)
	for i := 0; i < 2; i++ {
		ms[i] = &duelMachine{
			ann: ann, props: proposals, i: i,
			oracle: sim.MachineOp{Obj: q, Op: objects.OpDeq},
			won:    func(v sim.Value) bool { return v == "winner" },
		}
	}
	return ms
}

// witnessMachine generalizes duelMachine to the hierarchy's n-process
// witness shape: announce, consult the oracle once, keep your proposal
// if you won; a loser with exactly one peer adopts the other
// announcement, a loser among n ≥ 3 scans every announce cell in index
// order and adopts the smallest (the "natural generalization" the
// hierarchy censuses refute at level 2). Program counters: 0 announce,
// 1 oracle, 2 read the other cell (two-process loser), 3 scan cell j.
type witnessMachine struct {
	ann    *registers.Array
	props  []sim.Value
	i      int
	oracle sim.MachineOp
	won    func(sim.Value) bool
	pc, j  int
	best   sim.Value
}

var _ sim.Machine = (*witnessMachine)(nil)

// Pending implements sim.Machine.
func (m *witnessMachine) Pending() sim.MachineOp {
	switch m.pc {
	case 0:
		return sim.MachineOp{Obj: m.ann.Reg(m.i), Op: sim.OpWrite, NArgs: 1, Args: [2]sim.Value{m.props[m.i]}}
	case 1:
		return m.oracle
	case 2:
		return sim.MachineOp{Obj: m.ann.Reg(1 - m.i), Op: sim.OpRead}
	default:
		return sim.MachineOp{Obj: m.ann.Reg(m.j), Op: sim.OpRead}
	}
}

// Finish implements sim.Machine.
func (m *witnessMachine) Finish(v sim.Value) (bool, sim.Value, error) {
	switch m.pc {
	case 0:
		m.pc = 1
	case 1:
		if m.won(v) {
			return true, m.props[m.i], nil
		}
		if len(m.props) == 2 {
			m.pc = 2
		} else {
			m.pc, m.j, m.best = 3, 0, nil
		}
	case 2:
		return true, v, nil
	default:
		// The same nil-skipping rendered-order minimum as the Program
		// form's announceHelper.smallest.
		if v != nil && (m.best == nil || fmt.Sprint(v) < fmt.Sprint(m.best)) {
			m.best = v
		}
		m.j++
		if m.j == len(m.props) {
			return true, m.best, nil
		}
	}
	return false, nil, nil
}

// Save implements sim.Machine.
func (m *witnessMachine) Save(s *sim.Snap) {
	s.Int(m.pc)
	s.Int(m.j)
	s.Value(m.best)
}

// Restore implements sim.Machine.
func (m *witnessMachine) Restore(r *sim.SnapReader) {
	m.pc = r.Int()
	m.j = r.Int()
	m.best = r.Value()
}

// WitnessMachines builds n hierarchy-witness machines over a shared
// oracle: oracle(i) is process i's single oracle operation and won
// classifies its result. The announce array is created under annName
// (the hierarchy builders use plain "ann" to stay bit-identical with
// their Program twins; censuses use "<obj>.ann").
func WitnessMachines(sys *sim.System, annName string, proposals []sim.Value,
	oracle func(i int) sim.MachineOp, won func(sim.Value) bool) []sim.Machine {
	n := len(proposals)
	ann := registers.NewArray(sys, annName, n, nil)
	ms := make([]sim.Machine, n)
	for i := 0; i < n; i++ {
		ms[i] = &witnessMachine{
			ann: ann, props: proposals, i: i,
			oracle: oracle(i), won: won,
		}
	}
	return ms
}

// SwapMachines is the swap-register witness protocol in machine form:
// announce, swap your id in; whoever got nil back went first and wins,
// a loser adopts the other announcement (n = 2) or the smallest (n ≥ 3).
func SwapMachines(sys *sim.System, sw *objects.Swap, proposals []sim.Value) []sim.Machine {
	return WitnessMachines(sys, sw.Name()+".ann", proposals,
		func(i int) sim.MachineOp {
			return sim.MachineOp{Obj: sw, Op: objects.OpSwap, NArgs: 1, Args: [2]sim.Value{i}}
		},
		func(v sim.Value) bool { return v == nil })
}

// casConsMachine is one process of CASProtocol as a state machine:
// announce, c&s(⊥ → own symbol), read the winner, adopt its
// announcement.
type casConsMachine struct {
	cas    *objects.CAS
	ann    *registers.Array
	props  []sim.Value
	i      int
	pc     int
	winner int
}

var _ sim.Machine = (*casConsMachine)(nil)

// Pending implements sim.Machine.
func (m *casConsMachine) Pending() sim.MachineOp {
	switch m.pc {
	case 0:
		return sim.MachineOp{Obj: m.ann.Reg(m.i), Op: sim.OpWrite, NArgs: 1, Args: [2]sim.Value{m.props[m.i]}}
	case 1:
		return sim.MachineOp{
			Obj: m.cas, Op: objects.OpCAS, NArgs: 2,
			Args: [2]sim.Value{objects.Bottom, objects.Symbol(m.i + 1)},
		}
	case 2:
		return sim.MachineOp{Obj: m.cas, Op: sim.OpRead}
	default:
		return sim.MachineOp{Obj: m.ann.Reg(m.winner), Op: sim.OpRead}
	}
}

// Finish implements sim.Machine.
func (m *casConsMachine) Finish(v sim.Value) (bool, sim.Value, error) {
	switch m.pc {
	case 0, 1:
		m.pc++
		return false, nil, nil
	case 2:
		m.winner = int(v.(objects.Symbol)) - 1
		m.pc = 3
		return false, nil, nil
	default:
		return true, v, nil
	}
}

// Save implements sim.Machine.
func (m *casConsMachine) Save(s *sim.Snap) {
	s.Int(m.pc)
	s.Int(m.winner)
}

// Restore implements sim.Machine.
func (m *casConsMachine) Restore(r *sim.SnapReader) {
	m.pc = r.Int()
	m.winner = r.Int()
}

// CASMachines is CASProtocol in machine form, with the same n ≤ k−1
// capacity precondition and panic.
func CASMachines(sys *sim.System, cas *objects.CAS, proposals []sim.Value) []sim.Machine {
	n := len(proposals)
	if n > cas.K()-1 {
		panic(fmt.Sprintf("consensus: %d processes need %d symbols, compare&swap-(%d) has %d",
			n, n, cas.K(), cas.K()-1))
	}
	ann := registers.NewArray(sys, cas.Name()+".ann", n, nil)
	ms := make([]sim.Machine, n)
	for i := 0; i < n; i++ {
		ms[i] = &casConsMachine{cas: cas, ann: ann, props: proposals, i: i}
	}
	return ms
}

// stickyMachine is the one-step sticky-bit consensus process: sticky-
// write your proposal, decide whatever stuck.
type stickyMachine struct {
	sb   *objects.StickyBit
	prop sim.Value
}

var _ sim.Machine = (*stickyMachine)(nil)

// Pending implements sim.Machine.
func (m *stickyMachine) Pending() sim.MachineOp {
	return sim.MachineOp{Obj: m.sb, Op: sim.OpWrite, NArgs: 1, Args: [2]sim.Value{m.prop}}
}

// Finish implements sim.Machine.
func (m *stickyMachine) Finish(v sim.Value) (bool, sim.Value, error) { return true, v, nil }

// Save implements sim.Machine.
func (m *stickyMachine) Save(*sim.Snap) {}

// Restore implements sim.Machine.
func (m *stickyMachine) Restore(*sim.SnapReader) {}

// StickyBitMachines is the sticky-bit census protocol in machine form.
func StickyBitMachines(sb *objects.StickyBit, proposals []sim.Value) []sim.Machine {
	ms := make([]sim.Machine, len(proposals))
	for i, p := range proposals {
		ms[i] = &stickyMachine{sb: sb, prop: p}
	}
	return ms
}

// rwMachine is one process of RWAttempt as a state machine: announce,
// read every announcement in index order folding the minimum, decide
// it. pc 0 is the announce; pc 1..n are the reads of cells 0..n−1.
type rwMachine struct {
	ann   *registers.Array
	props []sim.Value
	i     int
	pc    int
	best  sim.Value
}

var _ sim.Machine = (*rwMachine)(nil)

// Pending implements sim.Machine.
func (m *rwMachine) Pending() sim.MachineOp {
	if m.pc == 0 {
		return sim.MachineOp{Obj: m.ann.Reg(m.i), Op: sim.OpWrite, NArgs: 1, Args: [2]sim.Value{m.props[m.i]}}
	}
	return sim.MachineOp{Obj: m.ann.Reg(m.pc - 1), Op: sim.OpRead}
}

// Finish implements sim.Machine.
func (m *rwMachine) Finish(v sim.Value) (bool, sim.Value, error) {
	if m.pc == 0 {
		m.best = m.props[m.i]
		m.pc = 1
		return false, nil, nil
	}
	if v != nil && fmt.Sprint(v) < fmt.Sprint(m.best) {
		m.best = v
	}
	m.pc++
	if m.pc == len(m.props)+1 {
		return true, m.best, nil
	}
	return false, nil, nil
}

// Save implements sim.Machine.
func (m *rwMachine) Save(s *sim.Snap) {
	s.Int(m.pc)
	s.Value(m.best)
}

// Restore implements sim.Machine.
func (m *rwMachine) Restore(r *sim.SnapReader) {
	m.pc = r.Int()
	m.best = r.Value()
}

// RWMachines is RWAttempt in machine form — the doomed level-1
// baseline, whose disagreement schedules the censuses count.
func RWMachines(sys *sim.System, name string, proposals []sim.Value) []sim.Machine {
	n := len(proposals)
	ann := registers.NewArray(sys, name+".ann", n, nil)
	ms := make([]sim.Machine, n)
	for i := 0; i < n; i++ {
		ms[i] = &rwMachine{ann: ann, props: proposals, i: i}
	}
	return ms
}

// degradeMachine is one process of DegradingCASProtocol as a state
// machine. Program counters:
//
//	0 announce · 1 c&s · 2 read · 3 adopt winner's announcement ·
//	4 scan published decisions (j) · 5 fold announcements (j, best) ·
//	6 publish own decision, then decide
//
// Every transition mirrors the Program's control flow, including the
// failed-object sentinel checks (which arrive as ordinary values).
type degradeMachine struct {
	obj      sim.Object
	ann, dec *registers.Array
	props    []sim.Value
	i        int
	pc, j    int
	best     sim.Value
	decision sim.Value
}

var _ sim.Machine = (*degradeMachine)(nil)

// Pending implements sim.Machine.
func (m *degradeMachine) Pending() sim.MachineOp {
	switch m.pc {
	case 0:
		return sim.MachineOp{Obj: m.ann.Reg(m.i), Op: sim.OpWrite, NArgs: 1, Args: [2]sim.Value{m.props[m.i]}}
	case 1:
		return sim.MachineOp{
			Obj: m.obj, Op: objects.OpCAS, NArgs: 2,
			Args: [2]sim.Value{objects.Bottom, objects.Symbol(m.i + 1)},
		}
	case 2:
		return sim.MachineOp{Obj: m.obj, Op: sim.OpRead}
	case 3:
		return sim.MachineOp{Obj: m.ann.Reg(m.j), Op: sim.OpRead}
	case 4:
		return sim.MachineOp{Obj: m.dec.Reg(m.j), Op: sim.OpRead}
	case 5:
		return sim.MachineOp{Obj: m.ann.Reg(m.j), Op: sim.OpRead}
	default:
		return sim.MachineOp{Obj: m.dec.Reg(m.i), Op: sim.OpWrite, NArgs: 1, Args: [2]sim.Value{m.decision}}
	}
}

// degrade enters the registers-only path: scan published decisions.
func (m *degradeMachine) degrade() {
	m.pc, m.j = 4, 0
}

// Finish implements sim.Machine.
func (m *degradeMachine) Finish(v sim.Value) (bool, sim.Value, error) {
	n := len(m.props)
	switch m.pc {
	case 0:
		m.pc = 1
	case 1:
		if faults.IsFailed(v) {
			m.degrade()
		} else {
			m.pc = 2
		}
	case 2:
		if faults.IsFailed(v) {
			m.degrade()
			break
		}
		if s, isSym := v.(objects.Symbol); isSym && s != objects.Bottom {
			if winner := int(s) - 1; winner >= 0 && winner < n {
				m.pc, m.j = 3, winner
				break
			}
		}
		// Garbled/omitted response with no usable owner: degrade
		// rather than decide garbage.
		m.degrade()
	case 3:
		m.decision = v
		m.pc = 6
	case 4:
		if v != nil {
			m.decision = v
			m.pc = 6
			break
		}
		m.j++
		if m.j == n {
			m.pc, m.j = 5, 0
			m.best = m.props[m.i]
		}
	case 5:
		if v != nil && fmt.Sprint(v) < fmt.Sprint(m.best) {
			m.best = v
		}
		m.j++
		if m.j == n {
			m.decision = m.best
			m.pc = 6
		}
	default:
		return true, m.decision, nil
	}
	return false, nil, nil
}

// Save implements sim.Machine.
func (m *degradeMachine) Save(s *sim.Snap) {
	s.Int(m.pc)
	s.Int(m.j)
	s.Value(m.best)
	s.Value(m.decision)
}

// Restore implements sim.Machine.
func (m *degradeMachine) Restore(r *sim.SnapReader) {
	m.pc = r.Int()
	m.j = r.Int()
	m.best = r.Value()
	m.decision = r.Value()
}

// DegradingCASMachines is DegradingCASProtocol in machine form; like
// it, the n ≤ k−1 capacity precondition is the caller's job.
func DegradingCASMachines(sys *sim.System, obj sim.Object, proposals []sim.Value) []sim.Machine {
	n := len(proposals)
	ann := registers.NewArray(sys, obj.Name()+".ann", n, nil)
	dec := registers.NewArray(sys, obj.Name()+".dec", n, nil)
	ms := make([]sim.Machine, n)
	for i := 0; i < n; i++ {
		ms[i] = &degradeMachine{obj: obj, ann: ann, dec: dec, props: proposals, i: i}
	}
	return ms
}
