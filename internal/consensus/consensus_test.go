package consensus_test

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/explore"
	"repro/internal/objects"
	"repro/internal/sim"
)

func casBuilder(k, n int) explore.Builder {
	return func() *sim.System {
		sys := sim.NewSystem()
		cas := objects.NewCAS("cas", k)
		sys.Add(cas)
		props := make([]sim.Value, n)
		for i := range props {
			props[i] = 100 + i
		}
		for _, p := range consensus.CASProtocol(sys, cas, props) {
			sys.Spawn(p)
		}
		return sys
	}
}

func proposalsOf(n int) []sim.Value {
	props := make([]sim.Value, n)
	for i := range props {
		props[i] = 100 + i
	}
	return props
}

func TestCASConsensusExhaustive(t *testing.T) {
	for _, tc := range []struct{ k, n int }{{3, 2}, {4, 3}} {
		props := proposalsOf(tc.n)
		c := explore.Run(casBuilder(tc.k, tc.n), explore.Options{}, func(res *sim.Result) error {
			return consensus.CheckAll(res, props, 4)
		})
		if !c.Exhaustive {
			t.Fatalf("k=%d n=%d: not exhaustive", tc.k, tc.n)
		}
		if len(c.Violations) != 0 {
			t.Errorf("k=%d n=%d: violation on %s", tc.k, tc.n,
				explore.FormatSchedule(c.Violations[0].Schedule))
		}
	}
}

func TestCASConsensusExhaustiveWithCrash(t *testing.T) {
	props := proposalsOf(2)
	c := explore.Run(casBuilder(3, 2), explore.Options{MaxCrashes: 1}, func(res *sim.Result) error {
		if err := consensus.CheckAgreement(res); err != nil {
			return err
		}
		return consensus.CheckValidity(res, props)
	})
	if len(c.Violations) != 0 {
		t.Errorf("violation under crash: %s", explore.FormatSchedule(c.Violations[0].Schedule))
	}
}

func TestCASConsensusCapacityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CASProtocol beyond alphabet did not panic")
		}
	}()
	sys := sim.NewSystem()
	cas := objects.NewCAS("cas", 3)
	sys.Add(cas)
	consensus.CASProtocol(sys, cas, proposalsOf(3)) // needs k >= 4
}

func TestTASConsensusExhaustive(t *testing.T) {
	props := [2]sim.Value{"x", "y"}
	b := func() *sim.System {
		sys := sim.NewSystem()
		ts := objects.NewTestAndSet("t")
		sys.Add(ts)
		for _, p := range consensus.TASProtocol(sys, ts, props) {
			sys.Spawn(p)
		}
		return sys
	}
	c := explore.Run(b, explore.Options{MaxCrashes: 1}, func(res *sim.Result) error {
		return consensus.CheckAll(res, props[:], 4)
	})
	if len(c.Violations) != 0 {
		t.Errorf("violation: %s", explore.FormatSchedule(c.Violations[0].Schedule))
	}
	if c.Outcomes[`[x x]`] == 0 || c.Outcomes[`[y y]`] == 0 {
		t.Errorf("outcomes %v: both values must be electable", c.Outcomes)
	}
}

func TestFetchAddConsensusExhaustive(t *testing.T) {
	props := [2]sim.Value{1, 2}
	b := func() *sim.System {
		sys := sim.NewSystem()
		fa := objects.NewFetchAdd("f", 0)
		sys.Add(fa)
		for _, p := range consensus.FetchAddProtocol(sys, fa, props) {
			sys.Spawn(p)
		}
		return sys
	}
	c := explore.Run(b, explore.Options{MaxCrashes: 1}, func(res *sim.Result) error {
		return consensus.CheckAll(res, props[:], 4)
	})
	if len(c.Violations) != 0 {
		t.Errorf("violation: %s", explore.FormatSchedule(c.Violations[0].Schedule))
	}
}

func TestQueueConsensusExhaustive(t *testing.T) {
	props := [2]sim.Value{7, 8}
	b := func() *sim.System {
		sys := sim.NewSystem()
		q := objects.NewQueue("q", "winner")
		sys.Add(q)
		for _, p := range consensus.QueueProtocol(sys, q, props) {
			sys.Spawn(p)
		}
		return sys
	}
	c := explore.Run(b, explore.Options{MaxCrashes: 1}, func(res *sim.Result) error {
		return consensus.CheckAll(res, props[:], 4)
	})
	if len(c.Violations) != 0 {
		t.Errorf("violation: %s", explore.FormatSchedule(c.Violations[0].Schedule))
	}
}

// TestRWAttemptDisagrees is the level-1 baseline: the read/write-only
// "consensus" must disagree on some schedule — the FLP/Loui–Abu-Amara
// shape (E6).
func TestRWAttemptDisagrees(t *testing.T) {
	props := []sim.Value{1, 2}
	b := func() *sim.System {
		sys := sim.NewSystem()
		for _, p := range consensus.RWAttempt(sys, "rw", props) {
			sys.Spawn(p)
		}
		return sys
	}
	c := explore.Run(b, explore.Options{MaxCrashes: 1}, consensus.CheckAgreement)
	if len(c.Violations) == 0 {
		t.Fatalf("no disagreement found; census:\n%s", explore.DescribeCensus(c))
	}
}

// TestRWAttemptValidButInconsistent: even the doomed protocol keeps
// validity — only agreement is lost. The distinction matters because
// the paper's LE definition separates the two.
func TestRWAttemptValidButInconsistent(t *testing.T) {
	props := []sim.Value{1, 2}
	b := func() *sim.System {
		sys := sim.NewSystem()
		for _, p := range consensus.RWAttempt(sys, "rw", props) {
			sys.Spawn(p)
		}
		return sys
	}
	c := explore.Run(b, explore.Options{}, func(res *sim.Result) error {
		return consensus.CheckValidity(res, props)
	})
	if len(c.Violations) != 0 {
		t.Errorf("validity violated: %s", explore.FormatSchedule(c.Violations[0].Schedule))
	}
}

func TestCheckWaitFreeFlagsSlowProcess(t *testing.T) {
	res := &sim.Result{
		Values:  []sim.Value{1},
		Errors:  []error{nil},
		Crashed: []bool{false},
		Steps:   []int{99},
	}
	if err := consensus.CheckWaitFree(res, 10); err == nil {
		t.Error("step bound 10 not enforced against 99 steps")
	}
	if err := consensus.CheckWaitFree(res, 100); err != nil {
		t.Errorf("unexpected: %v", err)
	}
}

func TestCheckAgreementAndValidity(t *testing.T) {
	res := &sim.Result{
		Values:  []sim.Value{1, 2},
		Errors:  []error{nil, nil},
		Crashed: []bool{false, false},
		Steps:   []int{1, 1},
	}
	if err := consensus.CheckAgreement(res); err == nil {
		t.Error("disagreement not flagged")
	}
	if err := consensus.CheckValidity(res, []sim.Value{1, 2}); err != nil {
		t.Errorf("valid decisions flagged: %v", err)
	}
	if err := consensus.CheckValidity(res, []sim.Value{3}); err == nil {
		t.Error("invalid decision not flagged")
	}
}

// TestRWCarefulSafeButNotLive is the other FLP horn: the careful
// read/write protocol never disagrees on any complete schedule, but
// crashing one process leaves the rest spinning forever — safety
// without liveness. With RWAttempt (fast but inconsistent) this pins
// the full dichotomy that makes level 1 of the hierarchy powerless.
func TestRWCarefulSafeButNotLive(t *testing.T) {
	props := []sim.Value{1, 2}
	b := func() *sim.System {
		sys := sim.NewSystem()
		for _, p := range consensus.RWCareful(sys, "rw", props) {
			sys.Spawn(p)
		}
		return sys
	}
	c := explore.Run(b, explore.Options{MaxCrashes: 1, MaxDepth: 40, MaxRuns: 100000}, func(res *sim.Result) error {
		return consensus.CheckAgreement(res)
	})
	if len(c.Violations) != 0 {
		t.Errorf("careful protocol disagreed: %s", explore.FormatSchedule(c.Violations[0].Schedule))
	}
	if c.Incomplete == 0 {
		t.Error("no non-terminating schedule found: liveness loss not demonstrated")
	}
	if c.Complete == 0 {
		t.Error("no complete runs at all")
	}
}

// TestTournamentAttemptDisagrees: two test&set objects in a tournament
// cannot give 3-consensus — level-2 objects do not compose upward. The
// explorer exhibits the schedule.
func TestTournamentAttemptDisagrees(t *testing.T) {
	props := [3]sim.Value{1, 2, 3}
	b := func() *sim.System {
		sys := sim.NewSystem()
		semi := objects.NewTestAndSet("semi")
		final := objects.NewTestAndSet("final")
		sys.Add(semi)
		sys.Add(final)
		for _, p := range consensus.TournamentAttempt(sys, semi, final, props) {
			sys.Spawn(p)
		}
		return sys
	}
	c := explore.Run(b, explore.Options{MaxRuns: 400000}, consensus.CheckAgreement)
	if len(c.Violations) == 0 {
		t.Fatalf("no disagreement found; census:\n%s", explore.DescribeCensus(c))
	}
	// Validity still holds: guesses are always announced proposals.
	c = explore.Run(b, explore.Options{MaxRuns: 100000}, func(res *sim.Result) error {
		return consensus.CheckValidity(res, props[:])
	})
	if len(c.Violations) != 0 {
		t.Errorf("validity violated: %s", explore.FormatSchedule(c.Violations[0].Schedule))
	}
}

// TestLLSCConsensusExhaustive: the paper's other universal primitive,
// load-link/store-conditional-(k), solves n ≤ k−1 consensus on every
// schedule with crashes — and is size-limited exactly like compare&swap
// (the constructor refuses n > k−1).
func TestLLSCConsensusExhaustive(t *testing.T) {
	props := proposalsOf(2)
	b := func() *sim.System {
		sys := sim.NewSystem()
		reg := objects.NewLLSC("llsc", 3)
		sys.Add(reg)
		for _, p := range consensus.LLSCProtocol(sys, reg, props) {
			sys.Spawn(p)
		}
		return sys
	}
	c := explore.Run(b, explore.Options{MaxCrashes: 1}, func(res *sim.Result) error {
		if err := consensus.CheckAgreement(res); err != nil {
			return err
		}
		if err := consensus.CheckValidity(res, props); err != nil {
			return err
		}
		return consensus.CheckWaitFree(res, 8)
	})
	if len(c.Violations) != 0 {
		t.Errorf("violation: %s", explore.FormatSchedule(c.Violations[0].Schedule))
	}
	if !c.Exhaustive {
		t.Error("walk not exhaustive")
	}
}

func TestLLSCConsensusCapacityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("LLSCProtocol beyond alphabet did not panic")
		}
	}()
	sys := sim.NewSystem()
	reg := objects.NewLLSC("llsc", 3)
	sys.Add(reg)
	consensus.LLSCProtocol(sys, reg, proposalsOf(3))
}
