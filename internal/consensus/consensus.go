// Package consensus provides wait-free consensus protocols for each
// level of Herlihy's hierarchy that the paper builds on: read/write
// attempts (impossible, level 1), test&set and fetch&add (level 2), and
// compare&swap (level ∞ — but, as the paper shows, only with enough
// values). Verdict helpers check agreement, validity and wait-freedom
// of simulation results.
package consensus

import (
	"fmt"

	"repro/internal/objects"
	"repro/internal/registers"
	"repro/internal/sim"
)

// CASProtocol returns n programs solving n-process consensus with one
// compare&swap-(k) register and an announce array: process i announces
// its proposal, performs c&s(⊥ → i+1), reads the register, and decides
// the announced proposal of the symbol owner. Requires n ≤ k−1 (each
// process needs its own symbol); the constructor panics otherwise —
// this very precondition is the size limit the paper studies.
func CASProtocol(sys *sim.System, cas *objects.CAS, proposals []sim.Value) []sim.Program {
	n := len(proposals)
	if n > cas.K()-1 {
		panic(fmt.Sprintf("consensus: %d processes need %d symbols, compare&swap-(%d) has %d",
			n, n, cas.K(), cas.K()-1))
	}
	ann := registers.NewArray(sys, cas.Name()+".ann", n, nil)
	progs := make([]sim.Program, n)
	for i := 0; i < n; i++ {
		i := i
		progs[i] = func(e *sim.Env) (sim.Value, error) {
			ann.Write(e, proposals[i])
			cas.CompareAndSwap(e, objects.Bottom, objects.Symbol(i+1))
			winner := int(cas.Read(e)) - 1
			return ann.Read(e, winner), nil
		}
	}
	return progs
}

// LLSCProtocol returns n programs solving n-process consensus with one
// load-link/store-conditional-(k) register plus an announce array —
// the other universal primitive the paper's introduction names, with
// the same size limit: n ≤ k−1 symbols. Wait-free in at most two
// link/store rounds: a failed store means someone else's store landed,
// and the register never returns to ⊥.
func LLSCProtocol(sys *sim.System, reg *objects.LLSC, proposals []sim.Value) []sim.Program {
	n := len(proposals)
	if n > reg.K()-1 {
		panic(fmt.Sprintf("consensus: %d processes need %d symbols, ll/sc-(%d) has %d",
			n, n, reg.K(), reg.K()-1))
	}
	ann := registers.NewArray(sys, reg.Name()+".ann", n, nil)
	progs := make([]sim.Program, n)
	for i := 0; i < n; i++ {
		i := i
		progs[i] = func(e *sim.Env) (sim.Value, error) {
			ann.Write(e, proposals[i])
			for {
				cur := reg.LoadLink(e)
				if cur != objects.Bottom {
					return ann.Read(e, int(cur)-1), nil
				}
				if reg.StoreConditional(e, objects.Symbol(i+1)) {
					return proposals[i], nil
				}
			}
		}
	}
	return progs
}

// TASProtocol returns 2 programs solving 2-process consensus with one
// test&set bit: the winner decides its own proposal, the loser adopts
// the winner's announcement (written before the t&s, so always
// visible).
func TASProtocol(sys *sim.System, ts *objects.TestAndSet, proposals [2]sim.Value) []sim.Program {
	ann := registers.NewArray(sys, ts.Name()+".ann", 2, nil)
	progs := make([]sim.Program, 2)
	for i := 0; i < 2; i++ {
		i := i
		progs[i] = func(e *sim.Env) (sim.Value, error) {
			ann.Write(e, proposals[i])
			if ts.TestAndSet(e) {
				return proposals[i], nil
			}
			return ann.Read(e, 1-i), nil
		}
	}
	return progs
}

// FetchAddProtocol returns 2 programs solving 2-process consensus with
// one fetch&add register: ticket 0 wins.
func FetchAddProtocol(sys *sim.System, fa *objects.FetchAdd, proposals [2]sim.Value) []sim.Program {
	ann := registers.NewArray(sys, fa.Name()+".ann", 2, nil)
	progs := make([]sim.Program, 2)
	for i := 0; i < 2; i++ {
		i := i
		progs[i] = func(e *sim.Env) (sim.Value, error) {
			ann.Write(e, proposals[i])
			if fa.FetchAdd(e, 1) == 0 {
				return proposals[i], nil
			}
			return ann.Read(e, 1-i), nil
		}
	}
	return progs
}

// QueueProtocol returns 2 programs solving 2-process consensus with a
// queue pre-loaded with a "winner" token (Herlihy's classic level-2
// construction).
func QueueProtocol(sys *sim.System, q *objects.Queue, proposals [2]sim.Value) []sim.Program {
	ann := registers.NewArray(sys, q.Name()+".ann", 2, nil)
	progs := make([]sim.Program, 2)
	for i := 0; i < 2; i++ {
		i := i
		progs[i] = func(e *sim.Env) (sim.Value, error) {
			ann.Write(e, proposals[i])
			if q.Deq(e) == "winner" {
				return proposals[i], nil
			}
			return ann.Read(e, 1-i), nil
		}
	}
	return progs
}

// RWAttempt returns n programs attempting consensus with only
// read/write registers: announce, snapshot all announcements, decide
// the minimum announced value. It is doomed by FLP/Loui–Abu-Amara —
// the explorer exhibits disagreeing schedules — and exists as the
// level-1 baseline.
func RWAttempt(sys *sim.System, name string, proposals []sim.Value) []sim.Program {
	n := len(proposals)
	ann := registers.NewArray(sys, name+".ann", n, nil)
	progs := make([]sim.Program, n)
	for i := 0; i < n; i++ {
		i := i
		progs[i] = func(e *sim.Env) (sim.Value, error) {
			ann.Write(e, proposals[i])
			vals := ann.Collect(e)
			best := proposals[i]
			for _, v := range vals {
				if v == nil {
					continue
				}
				if fmt.Sprint(v) < fmt.Sprint(best) {
					best = v
				}
			}
			return best, nil
		}
	}
	return progs
}

// TournamentAttempt returns 3 programs attempting 3-process consensus
// from TWO test&set objects arranged as a tournament: p0 and p1 meet in
// a semifinal, the survivor meets p2 in the final. The construction is
// doomed — 2-consensus objects do not compose into 3-consensus (their
// consensus number is exactly 2) — because a semifinal loser cannot
// learn wait-free who won the final: it adopts the smallest announced
// finalist value, and the explorer finds schedules where that guess is
// wrong. This is the composition face of Herlihy's hierarchy, next to
// the single-object faces in package hierarchy.
func TournamentAttempt(sys *sim.System, semi, final *objects.TestAndSet, proposals [3]sim.Value) []sim.Program {
	finalAnn := registers.NewArray(sys, final.Name()+".fin", 3, nil)
	progs := make([]sim.Program, 3)
	finalist := func(e *sim.Env, v sim.Value) sim.Value {
		finalAnn.Write(e, v)
		if final.TestAndSet(e) {
			return v
		}
		// Lost the final: adopt the other finalist's announcement.
		for j := 0; j < 3; j++ {
			if j == int(e.ID()) {
				continue
			}
			if w := finalAnn.Read(e, j); w != nil {
				return w
			}
		}
		return v
	}
	for i := 0; i < 2; i++ {
		i := i
		progs[i] = func(e *sim.Env) (sim.Value, error) {
			if semi.TestAndSet(e) {
				return finalist(e, proposals[i]), nil
			}
			// Semifinal loser: it cannot wait for the final, so it
			// guesses from whatever finalists have announced.
			best := sim.Value(nil)
			for j := 0; j < 3; j++ {
				if w := finalAnn.Read(e, j); w != nil {
					if best == nil || fmt.Sprint(w) < fmt.Sprint(best) {
						best = w
					}
				}
			}
			if best == nil {
				best = proposals[1-i] // the semifinal winner's proposal
			}
			return best, nil
		}
	}
	progs[2] = func(e *sim.Env) (sim.Value, error) {
		return finalist(e, proposals[2]), nil
	}
	return progs
}

// RWCareful returns n programs attempting consensus with only
// read/write registers by the opposite compromise to RWAttempt: a
// process announces and then waits until every announcement is visible
// before deciding the minimum. It never disagrees — but it never
// terminates when some process is slow or crashed, so it is not
// wait-free. Together with RWAttempt it exhibits both horns of the
// FLP dichotomy: with read/write registers you lose either safety or
// liveness.
func RWCareful(sys *sim.System, name string, proposals []sim.Value) []sim.Program {
	n := len(proposals)
	ann := registers.NewArray(sys, name+".ann", n, nil)
	progs := make([]sim.Program, n)
	for i := 0; i < n; i++ {
		i := i
		progs[i] = func(e *sim.Env) (sim.Value, error) {
			ann.Write(e, proposals[i])
			for {
				vals := ann.Collect(e)
				complete := true
				best := sim.Value(nil)
				for _, v := range vals {
					if v == nil {
						complete = false
						break
					}
					if best == nil || fmt.Sprint(v) < fmt.Sprint(best) {
						best = v
					}
				}
				if complete {
					return best, nil
				}
			}
		}
	}
	return progs
}

// CheckAgreement fails if two decided processes decided differently.
func CheckAgreement(res *sim.Result) error {
	if d := res.DistinctDecisions(); len(d) > 1 {
		return fmt.Errorf("consensus: agreement violated: decisions %v", d)
	}
	return nil
}

// CheckValidity fails if a decided value is not among the proposals.
func CheckValidity(res *sim.Result, proposals []sim.Value) error {
	allowed := make(map[sim.Value]bool, len(proposals))
	for _, p := range proposals {
		allowed[p] = true
	}
	for _, id := range res.Decided() {
		if !allowed[res.Values[id]] {
			return fmt.Errorf("consensus: validity violated: process %d decided %v, proposals %v",
				id, res.Values[id], proposals)
		}
	}
	return nil
}

// CheckWaitFree fails if a non-crashed process failed to decide or took
// more than bound steps. Halted runs fail unconditionally.
func CheckWaitFree(res *sim.Result, bound int) error {
	if res.Halted {
		return fmt.Errorf("consensus: run halted with live processes %v", res.ReadyAtHalt)
	}
	for i, err := range res.Errors {
		if res.Crashed[i] {
			continue
		}
		if err != nil {
			return fmt.Errorf("consensus: process %d failed: %w", i, err)
		}
		if res.Steps[i] > bound {
			return fmt.Errorf("consensus: process %d took %d steps, bound %d", i, res.Steps[i], bound)
		}
	}
	return nil
}

// CheckAll composes agreement, validity and wait-freedom.
func CheckAll(res *sim.Result, proposals []sim.Value, stepBound int) error {
	if err := CheckAgreement(res); err != nil {
		return err
	}
	if err := CheckValidity(res, proposals); err != nil {
		return err
	}
	return CheckWaitFree(res, stepBound)
}
