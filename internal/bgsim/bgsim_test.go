package bgsim_test

import (
	"errors"
	"testing"

	"repro/internal/bgsim"
	"repro/internal/sim"
)

// saSystem builds m proposers over one safe-agreement object; each
// proposes its id and awaits the resolution.
func saSystem(m, maxPolls int) *sim.System {
	sys := sim.NewSystem()
	sa := bgsim.NewSafeAgreement(sys, "sa", m)
	for i := 0; i < m; i++ {
		i := i
		sys.Spawn(func(e *sim.Env) (sim.Value, error) {
			sa.Propose(e, i)
			return sa.Await(e, maxPolls)
		})
	}
	return sys
}

func TestSafeAgreementAgreesUnderRandomSchedules(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		res, err := saSystem(3, 200).Run(sim.Config{Scheduler: sim.Random(seed)})
		if err != nil {
			t.Fatal(err)
		}
		d := res.DistinctDecisions()
		if len(d) != 1 {
			t.Errorf("seed %d: decisions %v, want agreement", seed, d)
		}
		if v := d[0].(int); v < 0 || v > 2 {
			t.Errorf("seed %d: decided %v, not a proposal", seed, d[0])
		}
	}
}

func TestSafeAgreementAgreesOutsideUnsafeWindow(t *testing.T) {
	// Crash a proposer AFTER Propose returned (outside the window):
	// the survivors must still resolve and agree. Run proposer 0 solo
	// through its whole Propose (two snapshot updates + one scan = 22
	// steps with m = 3) and crash it afterwards.
	for seed := int64(0); seed < 30; seed++ {
		sys := saSystem(3, 400)
		warmup := make([]sim.ProcID, 25)
		res, err := sys.Run(sim.Config{
			Scheduler: sim.ReplayThen(warmup, sim.Random(seed)),
			Faults:    sim.CrashAt(map[int][]sim.ProcID{25: {0}}),
		})
		if err != nil {
			t.Fatal(err)
		}
		decided := 0
		var val sim.Value
		for i := 1; i < 3; i++ {
			if res.Errors[i] != nil {
				t.Fatalf("seed %d: survivor %d: %v", seed, i, res.Errors[i])
			}
			if decided == 0 {
				val = res.Values[i]
			} else if res.Values[i] != val {
				t.Errorf("seed %d: survivors disagree: %v vs %v", seed, res.Values[i], val)
			}
			decided++
		}
	}
}

func TestSafeAgreementUnsafeWindowBlocks(t *testing.T) {
	// Crash proposer 0 right after its level-1 update (Propose's first
	// shared operation is a multi-step snapshot update; crash after it
	// completes but before the back-off/commit write). The object must
	// stay unresolved for everyone.
	sys := sim.NewSystem()
	sa := bgsim.NewSafeAgreement(sys, "sa", 2)
	sys.Spawn(func(e *sim.Env) (sim.Value, error) {
		sa.Propose(e, 0)
		return sa.Await(e, 50)
	})
	sys.Spawn(func(e *sim.Env) (sim.Value, error) {
		sa.Propose(e, 1)
		return sa.Await(e, 50)
	})
	// Proposer 0's first snapshot Update = scan (4 reads) + read + write
	// = 6 steps when running solo. Crash it at step 6, pinned at level 1.
	var warmup []sim.ProcID
	for i := 0; i < 6; i++ {
		warmup = append(warmup, 0)
	}
	res, err := sys.Run(sim.Config{
		Scheduler: sim.ReplayThen(warmup, sim.RoundRobin()),
		Faults:    sim.CrashAt(map[int][]sim.ProcID{6: {0}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Errors[1], bgsim.ErrBlocked) {
		t.Errorf("survivor error = %v, want ErrBlocked (level-1 crash must pin the object)", res.Errors[1])
	}
}

func TestSafeAgreementValiditySolo(t *testing.T) {
	sys := sim.NewSystem()
	sa := bgsim.NewSafeAgreement(sys, "sa", 1)
	sys.Spawn(func(e *sim.Env) (sim.Value, error) {
		sa.Propose(e, "only")
		return sa.Await(e, 10)
	})
	res, err := sys.Run(sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] != "only" {
		t.Errorf("solo agreement = %v", res.Values[0])
	}
}

// TestBGSimulationConsistent: m=3 simulators each run ALL n=4 simulated
// flood-min codes; per simulated process, every simulator must extract
// the same decision, and decisions must be valid inputs.
func TestBGSimulationConsistent(t *testing.T) {
	inputs := []int{42, 7, 19, 7}
	for seed := int64(0); seed < 15; seed++ {
		sys := sim.NewSystem()
		s := bgsim.NewSimulation(sys, bgsim.FloodMin(4, 2, inputs), 3)
		for i := 0; i < 3; i++ {
			sys.Spawn(s.Simulator())
		}
		res, err := sys.Run(sim.Config{Scheduler: sim.Random(seed), MaxTotalSteps: 1 << 22})
		if err != nil {
			t.Fatal(err)
		}
		agreed := make(map[int]sim.Value)
		for i := 0; i < 3; i++ {
			if res.Errors[i] != nil {
				t.Fatalf("seed %d: simulator %d: %v", seed, i, res.Errors[i])
			}
			out := res.Values[i].(bgsim.Outcome)
			if len(out.Blocked) != 0 {
				t.Errorf("seed %d: simulator %d blocked on %v with no crashes", seed, i, out.Blocked)
			}
			for j, d := range out.Decisions {
				if v, ok := agreed[j]; ok && v != d {
					t.Errorf("seed %d: simulated p%d decided %v by one simulator, %v by another", seed, j, v, d)
				}
				agreed[j] = d
				valid := false
				for _, in := range inputs {
					if d == in {
						valid = true
					}
				}
				if !valid {
					t.Errorf("seed %d: simulated p%d decided %v, not an input", seed, j, d)
				}
			}
		}
		if len(agreed) != 4 {
			t.Errorf("seed %d: only %d simulated processes decided", seed, len(agreed))
		}
	}
}

// TestBGSimulationOneCrashBlocksAtMostOneCode: crash one simulator at a
// random point; the survivors must carry all but at most one simulated
// process to consistent decisions — BG's resilience transfer.
func TestBGSimulationOneCrashBlocksAtMostOneCode(t *testing.T) {
	inputs := []int{5, 9, 3, 8}
	sawBlock := false
	for seed := int64(0); seed < 25; seed++ {
		sys := sim.NewSystem()
		s := bgsim.NewSimulation(sys, bgsim.FloodMin(4, 2, inputs), 3)
		s.MaxPolls = 60
		for i := 0; i < 3; i++ {
			sys.Spawn(s.Simulator())
		}
		res, err := sys.Run(sim.Config{
			Scheduler:     sim.Random(seed),
			Faults:        sim.CrashAfterSteps(0, int(seed)*7%120+5),
			MaxTotalSteps: 1 << 22,
		})
		if err != nil {
			t.Fatal(err)
		}
		agreed := make(map[int]sim.Value)
		for i := 1; i < 3; i++ {
			if res.Errors[i] != nil {
				t.Fatalf("seed %d: survivor %d: %v", seed, i, res.Errors[i])
			}
			out := res.Values[i].(bgsim.Outcome)
			if len(out.Blocked) > 1 {
				t.Errorf("seed %d: simulator %d blocked on %d codes %v, one crash must block at most one",
					seed, i, len(out.Blocked), out.Blocked)
			}
			if len(out.Blocked) > 0 {
				sawBlock = true
			}
			for j, d := range out.Decisions {
				if v, ok := agreed[j]; ok && v != d {
					t.Errorf("seed %d: simulated p%d: %v vs %v", seed, j, v, d)
				}
				agreed[j] = d
			}
		}
		if len(agreed) < 3 {
			t.Errorf("seed %d: only %d simulated processes decided across survivors", seed, len(agreed))
		}
	}
	_ = sawBlock // blocking is schedule-dependent; consistency is the invariant
}
