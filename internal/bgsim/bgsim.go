// Package bgsim implements the Borowsky–Gafni simulation technique
// (reference [4] of the paper), the alternative the paper contrasts its
// emulation with: "in their technique each simulating process tries to
// simulate all the codes of the simulated algorithm while in our
// technique we divide the codes among the simulators, each simulating
// several codes."
//
// The BG construction lets m simulators jointly run an n-process
// read/write protocol: every simulator executes EVERY simulated
// process's code, and the result of each simulated step is fixed by a
// safe-agreement object, so all simulators see one coherent run. Safe
// agreement is wait-free except for a small "unsafe window": a
// simulator crashing inside the window blocks that one object — hence
// one crash blocks at most one simulated process, the essence of BG's
// t-resilience transfer. Comparing this with the paper's emulation
// (package core) makes the difference concrete: BG simulates read/write
// protocols by total replication; the paper's emulation divides the
// codes among emulators precisely because compare&swap steps cannot be
// replayed by everyone.
package bgsim

import (
	"errors"
	"fmt"

	"repro/internal/registers"
	"repro/internal/sim"
)

// SafeAgreement is the BG building block: an n-process one-shot
// agreement object built from a snapshot, wait-free outside the
// proposal's two-step unsafe window.
//
// Protocol (classic): a proposer raises its value to level 1, snapshots,
// and either backs off to level 0 (someone already reached level 2) or
// commits to level 2. A reader resolves once no proposer is pinned at
// level 1; the decision is the value of the smallest-id level-2
// proposer. If a proposer crashes at level 1 the object may stay
// unresolved forever — the unsafe window.
type SafeAgreement struct {
	name string
	snap *registers.Snapshot
}

// saCell is one proposer's published state.
type saCell struct {
	Level int // 0 backed off, 1 proposing (unsafe), 2 committed
	Value sim.Value
}

// NewSafeAgreement builds a safe-agreement object for n proposers
// (process IDs 0..n−1 of the hosting system).
func NewSafeAgreement(sys *sim.System, name string, n int) *SafeAgreement {
	return &SafeAgreement{
		name: name,
		snap: registers.NewSnapshot(sys, name, n, saCell{}),
	}
}

// Propose submits v. After Propose returns, the caller is outside the
// unsafe window.
func (sa *SafeAgreement) Propose(e *sim.Env, v sim.Value) {
	sa.snap.Update(e, saCell{Level: 1, Value: v})
	view := sa.snap.Scan(e)
	for _, c := range view {
		if c.(saCell).Level == 2 {
			sa.snap.Update(e, saCell{Level: 0, Value: v})
			return
		}
	}
	sa.snap.Update(e, saCell{Level: 2, Value: v})
}

// Resolve attempts to read the agreed value without blocking: ok is
// false while some proposer is pinned in its unsafe window or nobody
// committed yet.
func (sa *SafeAgreement) Resolve(e *sim.Env) (sim.Value, bool) {
	view := sa.snap.Scan(e)
	committed := -1
	for i, c := range view {
		cell := c.(saCell)
		if cell.Level == 1 {
			return nil, false // unsafe window open
		}
		if cell.Level == 2 && committed < 0 {
			committed = i
		}
	}
	if committed < 0 {
		return nil, false
	}
	return view[committed].(saCell).Value, true
}

// ErrBlocked is returned by a bounded Await that never resolved.
var ErrBlocked = errors.New("bgsim: safe agreement blocked (a proposer crashed in its unsafe window)")

// Await polls Resolve up to maxPolls times.
func (sa *SafeAgreement) Await(e *sim.Env, maxPolls int) (sim.Value, error) {
	for i := 0; i < maxPolls; i++ {
		if v, ok := sa.Resolve(e); ok {
			return v, nil
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrBlocked, sa.name)
}
