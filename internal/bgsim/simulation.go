package bgsim

import (
	"fmt"

	"repro/internal/sim"
)

// RoundProtocol is a simulated n-process read/write protocol in
// full-information round form: in each round every process writes a
// value (computed deterministically from its agreed view history) and
// snapshots the memory; after Rounds rounds it decides. This normal
// form covers the flood-min style protocols BG is classically applied
// to.
type RoundProtocol struct {
	// Name labels the protocol.
	Name string
	// N is the number of simulated processes; Rounds the round count.
	N, Rounds int
	// Input is process j's initial value.
	Input func(j int) sim.Value
	// Write computes the value process j writes in round r from its
	// input and its agreed snapshot views of earlier rounds.
	Write func(j, r int, input sim.Value, views [][]sim.Value) sim.Value
	// Decide computes process j's decision from all its views.
	Decide func(j int, input sim.Value, views [][]sim.Value) sim.Value
}

// FloodMin returns the classic flood-min protocol: write the smallest
// value seen so far, decide the smallest value ever seen. With enough
// rounds it is a correct consensus against ≤ rounds−1 crashes in
// synchronous models; here it simply gives the simulation something
// meaningful to agree about.
func FloodMin(n, rounds int, inputs []int) RoundProtocol {
	min := func(views [][]sim.Value, own int) int {
		best := own
		for _, view := range views {
			for _, v := range view {
				if v == nil {
					continue
				}
				if x := v.(int); x < best {
					best = x
				}
			}
		}
		return best
	}
	return RoundProtocol{
		Name:   fmt.Sprintf("flood-min(n=%d,r=%d)", n, rounds),
		N:      n,
		Rounds: rounds,
		Input:  func(j int) sim.Value { return inputs[j] },
		Write: func(_, _ int, input sim.Value, views [][]sim.Value) sim.Value {
			return min(views, input.(int))
		},
		Decide: func(_ int, input sim.Value, views [][]sim.Value) sim.Value {
			return min(views, input.(int))
		},
	}
}

// Outcome is one simulator's result: the simulated processes it carried
// to a decision (a blocked safe agreement abandons that one process —
// BG's "one crash blocks at most one code").
type Outcome struct {
	// Decisions maps simulated process id to its decision.
	Decisions map[int]sim.Value
	// Blocked lists simulated processes abandoned at a blocked
	// safe-agreement object.
	Blocked []int
}

// Simulation wires m simulators to jointly run a RoundProtocol: one
// safe-agreement object per (simulated process, round) fixes that
// step's snapshot result for everyone.
type Simulation struct {
	proto RoundProtocol
	m     int
	sas   [][]*SafeAgreement
	// MaxPolls bounds the wait on each safe agreement.
	MaxPolls int
}

// DefaultMaxPolls bounds safe-agreement waits per step.
const DefaultMaxPolls = 200

// NewSimulation registers the shared objects for m simulators on sys.
func NewSimulation(sys *sim.System, proto RoundProtocol, m int) *Simulation {
	s := &Simulation{proto: proto, m: m, MaxPolls: DefaultMaxPolls}
	s.sas = make([][]*SafeAgreement, proto.N)
	for j := range s.sas {
		s.sas[j] = make([]*SafeAgreement, proto.Rounds)
		for r := range s.sas[j] {
			s.sas[j][r] = NewSafeAgreement(sys, fmt.Sprintf("sa[%d][%d]", j, r), m)
		}
	}
	return s
}

// Simulator returns the program of one simulator. Every simulator runs
// every simulated process's code (the total-replication discipline the
// paper contrasts with its own code-partitioning emulation); the
// returned value is an Outcome.
func (s *Simulation) Simulator() sim.Program {
	return func(e *sim.Env) (sim.Value, error) {
		n := s.proto.N
		mem := make([]sim.Value, n)
		views := make([][][]sim.Value, n)
		blocked := make(map[int]bool, n)

		for r := 0; r < s.proto.Rounds; r++ {
			for j := 0; j < n; j++ {
				if blocked[j] {
					continue
				}
				input := s.proto.Input(j)
				mem[j] = s.proto.Write(j, r, input, views[j])
				// Propose this simulator's current memory estimate as
				// the snapshot process j takes at round r; the safe
				// agreement picks one estimate for everyone.
				prop := make([]sim.Value, n)
				copy(prop, mem)
				sa := s.sas[j][r]
				sa.Propose(e, prop)
				agreed, err := sa.Await(e, s.MaxPolls)
				if err != nil {
					// A simulator died inside this object's unsafe
					// window: abandon code j, keep simulating the rest.
					blocked[j] = true
					continue
				}
				view := agreed.([]sim.Value)
				views[j] = append(views[j], view)
				// Adopt the agreed view as the authoritative memory
				// estimate: later steps build on the chosen run.
				for i, v := range view {
					if v != nil {
						mem[i] = v
					}
				}
			}
		}

		out := Outcome{Decisions: make(map[int]sim.Value, n)}
		for j := 0; j < n; j++ {
			if blocked[j] {
				out.Blocked = append(out.Blocked, j)
				continue
			}
			out.Decisions[j] = s.proto.Decide(j, s.proto.Input(j), views[j])
		}
		return out, nil
	}
}
