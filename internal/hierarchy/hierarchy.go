// Package hierarchy is the laboratory for Herlihy's wait-free hierarchy
// (reference [10] of the paper), the classification the paper refines:
// read/write registers have consensus number 1, test&set / swap /
// fetch&add / queue have consensus number 2, and compare&swap has
// consensus number ∞ — yet, as the paper shows, a compare&swap that can
// hold only k values is nonetheless size-limited.
//
// Claims are checked mechanically with the explore package: "object O
// solves n-consensus" is witnessed by a concrete protocol passing
// agreement/validity/wait-freedom on every schedule (with crashes);
// "does not solve" is witnessed in the FLP shape — the canonical
// protocol admits a disagreeing schedule or an ever-bivalent adversary.
package hierarchy

import (
	"fmt"

	"repro/internal/consensus"
	"repro/internal/explore"
	"repro/internal/objects"
	"repro/internal/sim"
)

// Level is one row of the hierarchy table.
type Level struct {
	// Object names the object type.
	Object string
	// ConsensusNumber is the claimed level (−1 renders ∞).
	ConsensusNumber int
	// Note summarizes the paper's refinement where applicable.
	Note string
}

// Infinity is the rendered consensus number of universal objects.
const Infinity = -1

// Table returns the hierarchy rows relevant to the paper, including the
// size refinement of its main theorem.
func Table(k int) []Level {
	return []Level{
		{Object: "read/write register", ConsensusNumber: 1, Note: "FLP/LAA: no wait-free 2-consensus"},
		{Object: "test&set", ConsensusNumber: 2, Note: "2 yes, 3 no"},
		{Object: "fetch&add", ConsensusNumber: 2, Note: "2 yes, 3 no"},
		{Object: "swap", ConsensusNumber: 2, Note: "2 yes, 3 no"},
		{Object: "FIFO queue", ConsensusNumber: 2, Note: "2 yes, 3 no"},
		{Object: "sticky bit", ConsensusNumber: Infinity, Note: "universal (Plotkin)"},
		{Object: fmt.Sprintf("compare&swap-(%d)", k), ConsensusNumber: Infinity,
			Note: "consensus ∞, but leader election capacity bounded: k−1 alone, O(k^(k²+3)) with r/w registers"},
	}
}

// Witness is the outcome of checking one (object, n) cell.
type Witness struct {
	Object string
	N      int
	// Solves reports whether the canonical protocol passed on every
	// explored schedule.
	Solves bool
	// Violation, when not Solves, is a schedule demonstrating failure.
	Violation string
	// Runs is the number of schedules explored.
	Runs int
	// Errors lists subtrees the exploration permanently lost (possible
	// only under supervised parallel runs); non-empty means the verdict
	// is not backed by a full census.
	Errors []string
	// Cancelled reports that the exploration was cut short by its
	// context (deadline or interrupt) — same caveat as Errors.
	Cancelled bool
}

// Partial reports whether the witness rests on an incomplete census —
// in that case neither "solves" nor "fails" (absent a concrete
// violation) is trustworthy.
func (w Witness) Partial() bool {
	return w.Cancelled || len(w.Errors) > 0
}

// checkAll verifies a builder against full agreement/validity checks
// over every schedule with up to one crash. tunes forward exploration
// tuning (explore.WithPrune, explore.WithWorkers) from the caller.
func checkAll(b explore.Builder, proposals []sim.Value, maxRuns int, tunes ...explore.Tune) Witness {
	w := Witness{Solves: true}
	opts := explore.Options{MaxCrashes: 1, MaxRuns: maxRuns}.With(tunes...)
	c := explore.Run(b, opts, func(res *sim.Result) error {
		if err := consensus.CheckAgreement(res); err != nil {
			return err
		}
		return consensus.CheckValidity(res, proposals)
	})
	w.Runs = c.Complete + c.Incomplete
	w.Errors = c.Errors
	w.Cancelled = c.Cancelled
	if len(c.Violations) > 0 {
		w.Solves = false
		w.Violation = explore.FormatSchedule(c.Violations[0].Schedule)
	}
	if c.Incomplete > 0 {
		// Non-terminating schedules break wait-freedom.
		w.Solves = false
		if w.Violation == "" {
			w.Violation = "non-terminating schedule (depth bound hit)"
		}
	}
	return w
}

func proposals(n int) []sim.Value {
	out := make([]sim.Value, n)
	for i := range out {
		out[i] = 100 + i
	}
	return out
}

// CheckTAS verifies test&set n-consensus via the canonical winner/loser
// protocol. It solves n = 2; for n = 3 the same idea (losers adopt the
// unique winner's value — but with three processes a loser cannot tell
// which of the other two won) has no canonical protocol; we check the
// natural generalization "losers adopt the smallest announced value",
// which the explorer refutes.
func CheckTAS(n int, maxRuns int, tunes ...explore.Tune) Witness {
	props := proposals(n)
	b := func() *sim.System {
		sys := sim.NewSystem()
		ts := objects.NewTestAndSet("t")
		sys.Add(ts)
		// Machine form: direct-dispatch fast path, same op sequence as
		// the Program (duel at n = 2, announce/oracle/smallest-scan
		// witness beyond), cross-checked by the equivalence tests.
		if n == 2 {
			for _, m := range consensus.TASMachines(sys, ts, [2]sim.Value{props[0], props[1]}) {
				sys.SpawnMachine(m)
			}
			return sys
		}
		ms := consensus.WitnessMachines(sys, "ann", props,
			func(int) sim.MachineOp { return sim.MachineOp{Obj: ts, Op: objects.OpTAS} },
			func(v sim.Value) bool { return v.(bool) })
		for _, m := range ms {
			sys.SpawnMachine(m)
		}
		return sys
	}
	w := checkAll(b, props, maxRuns, tunes...)
	w.Object, w.N = "test&set", n
	return w
}

// CheckFetchAdd verifies fetch&add n-consensus (ticket protocol;
// generalization for n ≥ 3 adopts the smallest announced value).
func CheckFetchAdd(n int, maxRuns int, tunes ...explore.Tune) Witness {
	props := proposals(n)
	b := func() *sim.System {
		sys := sim.NewSystem()
		fa := objects.NewFetchAdd("f", 0)
		sys.Add(fa)
		if n == 2 {
			for _, m := range consensus.FetchAddMachines(sys, fa, [2]sim.Value{props[0], props[1]}) {
				sys.SpawnMachine(m)
			}
			return sys
		}
		ms := consensus.WitnessMachines(sys, "ann", props,
			func(int) sim.MachineOp {
				return sim.MachineOp{Obj: fa, Op: objects.OpFetchAdd, NArgs: 1, Args: [2]sim.Value{1}}
			},
			func(v sim.Value) bool { return v.(int) == 0 })
		for _, m := range ms {
			sys.SpawnMachine(m)
		}
		return sys
	}
	w := checkAll(b, props, maxRuns, tunes...)
	w.Object, w.N = "fetch&add", n
	return w
}

// CheckSwap verifies swap n-consensus: announce, then swap your id into
// the register; whoever got ⊥ back went first and wins. Level 2: solves
// 2, fails 3 (a loser cannot tell which of the other two won first, and
// the smallest-announced generalization disagrees).
func CheckSwap(n int, maxRuns int, tunes ...explore.Tune) Witness {
	props := proposals(n)
	b := func() *sim.System {
		sys := sim.NewSystem()
		sw := objects.NewSwap("s", nil)
		sys.Add(sw)
		// The witness machine covers both arities: a nil swap return
		// means you went first; a two-process loser adopts the other
		// announcement, a larger loser scans for the smallest.
		ms := consensus.WitnessMachines(sys, "ann", props,
			func(i int) sim.MachineOp {
				return sim.MachineOp{Obj: sw, Op: objects.OpSwap, NArgs: 1, Args: [2]sim.Value{i}}
			},
			func(v sim.Value) bool { return v == nil })
		for _, m := range ms {
			sys.SpawnMachine(m)
		}
		return sys
	}
	w := checkAll(b, props, maxRuns, tunes...)
	w.Object, w.N = "swap", n
	return w
}

// CheckQueue verifies queue n-consensus (pre-loaded winner token).
func CheckQueue(n int, maxRuns int, tunes ...explore.Tune) Witness {
	props := proposals(n)
	b := func() *sim.System {
		sys := sim.NewSystem()
		q := objects.NewQueue("q", "winner")
		sys.Add(q)
		if n == 2 {
			for _, m := range consensus.QueueMachines(sys, q, [2]sim.Value{props[0], props[1]}) {
				sys.SpawnMachine(m)
			}
			return sys
		}
		ms := consensus.WitnessMachines(sys, "ann", props,
			func(int) sim.MachineOp { return sim.MachineOp{Obj: q, Op: objects.OpDeq} },
			func(v sim.Value) bool { return v == "winner" })
		for _, m := range ms {
			sys.SpawnMachine(m)
		}
		return sys
	}
	w := checkAll(b, props, maxRuns, tunes...)
	w.Object, w.N = "queue", n
	return w
}

// CheckRW verifies the read/write-only attempt (level 1: fails already
// at n = 2).
func CheckRW(n int, maxRuns int, tunes ...explore.Tune) Witness {
	props := proposals(n)
	b := func() *sim.System {
		sys := sim.NewSystem()
		for _, m := range consensus.RWMachines(sys, "rw", props) {
			sys.SpawnMachine(m)
		}
		return sys
	}
	w := checkAll(b, props, maxRuns, tunes...)
	w.Object, w.N = "read/write", n
	return w
}

// CheckCAS verifies compare&swap-(k) n-consensus for n ≤ k−1 (the
// paper's size limit governs the constructor, which panics beyond it).
func CheckCAS(k, n int, maxRuns int, tunes ...explore.Tune) Witness {
	props := proposals(n)
	b := func() *sim.System {
		sys := sim.NewSystem()
		cas := objects.NewCAS("cas", k)
		sys.Add(cas)
		for _, m := range consensus.CASMachines(sys, cas, props) {
			sys.SpawnMachine(m)
		}
		return sys
	}
	w := checkAll(b, props, maxRuns, tunes...)
	w.Object, w.N = fmt.Sprintf("compare&swap-(%d)", k), n
	return w
}

// CheckStickyBit verifies sticky-bit n-consensus: everyone writes its
// proposal; the first write sticks and is returned to all.
func CheckStickyBit(n int, maxRuns int, tunes ...explore.Tune) Witness {
	props := proposals(n)
	b := func() *sim.System {
		sys := sim.NewSystem()
		sb := objects.NewStickyBit("s")
		sys.Add(sb)
		for _, m := range consensus.StickyBitMachines(sb, props) {
			sys.SpawnMachine(m)
		}
		return sys
	}
	w := checkAll(b, props, maxRuns, tunes...)
	w.Object, w.N = "sticky bit", n
	return w
}

