package hierarchy_test

import (
	"testing"

	"repro/internal/explore"
	"repro/internal/hierarchy"
)

// TestLevelTwoObjectsSolveTwo is E6's positive rows: test&set,
// fetch&add and queue each solve 2-consensus on every schedule with up
// to one crash.
func TestLevelTwoObjectsSolveTwo(t *testing.T) {
	checks := []func(n, maxRuns int, tunes ...explore.Tune) hierarchy.Witness{
		hierarchy.CheckTAS,
		hierarchy.CheckFetchAdd,
		hierarchy.CheckQueue,
	}
	for _, check := range checks {
		w := check(2, 100000)
		if !w.Solves {
			t.Errorf("%s should solve 2-consensus; violation at %s", w.Object, w.Violation)
		}
		if w.Runs == 0 {
			t.Errorf("%s: no runs explored", w.Object)
		}
	}
}

// TestLevelTwoObjectsFailThree is E6's negative rows: the natural
// 3-process generalizations of the level-2 protocols disagree on some
// schedule — the objects' consensus number is exactly 2.
func TestLevelTwoObjectsFailThree(t *testing.T) {
	checks := []func(n, maxRuns int, tunes ...explore.Tune) hierarchy.Witness{
		hierarchy.CheckTAS,
		hierarchy.CheckFetchAdd,
		hierarchy.CheckQueue,
	}
	for _, check := range checks {
		w := check(3, 400000)
		if w.Solves {
			t.Errorf("%s: 3-process protocol survived exploration (consensus number should be 2)", w.Object)
		}
	}
}

// TestRWFailsTwo: read/write registers cannot solve even 2-consensus.
func TestRWFailsTwo(t *testing.T) {
	w := hierarchy.CheckRW(2, 100000)
	if w.Solves {
		t.Error("read/write attempt survived exploration (FLP says it must not)")
	}
	if w.Violation == "" {
		t.Error("no violating schedule recorded")
	}
}

// TestCASSolvesUpToAlphabet: compare&swap-(k) solves n-consensus for
// every n ≤ k−1 — and the size limit k−1 is structural (the protocol
// cannot even be instantiated beyond it).
func TestCASSolvesUpToAlphabet(t *testing.T) {
	for _, tc := range []struct{ k, n int }{{3, 2}, {4, 2}, {4, 3}} {
		maxRuns := 400000
		if tc.n >= 3 {
			maxRuns = 120000 // crash branching at n=3 explodes; bounded sweep
		}
		w := hierarchy.CheckCAS(tc.k, tc.n, maxRuns)
		if !w.Solves {
			t.Errorf("compare&swap-(%d) failed %d-consensus: %s", tc.k, tc.n, w.Violation)
		}
	}
}

// TestStickyBitSolvesMany: the sticky bit is universal — its one-shot
// protocol agrees for any explored n.
func TestStickyBitSolvesMany(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		w := hierarchy.CheckStickyBit(n, 400000)
		if !w.Solves {
			t.Errorf("sticky bit failed %d-consensus: %s", n, w.Violation)
		}
	}
}

func TestTableShape(t *testing.T) {
	rows := hierarchy.Table(5)
	if len(rows) != 7 {
		t.Fatalf("table has %d rows", len(rows))
	}
	byObject := make(map[string]int)
	for _, r := range rows {
		byObject[r.Object] = r.ConsensusNumber
	}
	if byObject["read/write register"] != 1 {
		t.Error("read/write consensus number wrong")
	}
	if byObject["test&set"] != 2 {
		t.Error("test&set consensus number wrong")
	}
	if byObject["compare&swap-(5)"] != hierarchy.Infinity {
		t.Error("compare&swap consensus number wrong")
	}
}

// TestSwapLevelTwo: swap solves 2-consensus exhaustively and fails at 3.
func TestSwapLevelTwo(t *testing.T) {
	w := hierarchy.CheckSwap(2, 200000)
	if !w.Solves {
		t.Errorf("swap should solve 2-consensus; violation at %s", w.Violation)
	}
	w = hierarchy.CheckSwap(3, 400000)
	if w.Solves {
		t.Error("swap 3-process generalization survived exploration (consensus number should be 2)")
	}
}

// TestDegradingCAS is the robustness face: the degrading compare&swap
// protocol solves consensus when the object stays healthy, and with a
// one-fault budget the registers-only fallback admits the disagreement
// FLP mandates — witnessed by a concrete schedule.
func TestDegradingCAS(t *testing.T) {
	healthy := hierarchy.CheckCASDegrading(3, 2, 0, 400000, nil)
	if !healthy.Solves {
		t.Errorf("healthy degrading compare&swap should solve 2-consensus; violation at %s", healthy.Violation)
	}
	faulted := hierarchy.CheckCASDegrading(3, 2, 1, 2000000, nil, explore.WithPrune())
	if faulted.Solves {
		t.Errorf("%s with a fault budget should admit a violation (registers-only fallback)", faulted.Object)
	}
	if faulted.Violation == "" {
		t.Errorf("%s: missing violating schedule", faulted.Object)
	}
}
