package hierarchy

import (
	"fmt"

	"repro/internal/consensus"
	"repro/internal/explore"
	"repro/internal/faults"
	"repro/internal/objects"
	"repro/internal/sim"
)

// CheckCASDegrading verifies compare&swap-(k) n-consensus when the
// compare&swap object may suffer up to faultBudget injected faults
// (crash-only when modes is empty) and the protocol degrades to
// registers only — the robustness face of the hierarchy table. With
// faultBudget 0 it must report Solves like CheckCAS; with a positive
// budget the explorer exhibits the FLP-mandated disagreement of the
// registers-only fallback, so Solves is expected false and the witness
// carries the violating schedule.
func CheckCASDegrading(k, n, faultBudget int, maxRuns int, modes []sim.FaultMode, tunes ...explore.Tune) Witness {
	if n > k-1 {
		panic(fmt.Sprintf("hierarchy: %d processes need %d symbols, compare&swap-(%d) has %d",
			n, n, k, k-1))
	}
	props := proposals(n)
	b := func() *sim.System {
		sys := sim.NewSystem()
		cas := faults.Wrap(objects.NewCAS("cas", k))
		sys.Add(cas)
		for _, p := range consensus.DegradingCASProtocol(sys, cas, props) {
			sys.Spawn(p)
		}
		return sys
	}
	all := append([]explore.Tune{explore.WithObjectFaults(faultBudget, modes...)}, tunes...)
	w := checkAll(b, props, maxRuns, all...)
	w.Object, w.N = fmt.Sprintf("degrading compare&swap-(%d), %d faults", k, faultBudget), n
	return w
}
