package setconsensus_test

import (
	"testing"

	"repro/internal/explore"
	"repro/internal/setconsensus"
	"repro/internal/sim"
)

func proposals(n int) []sim.Value {
	out := make([]sim.Value, n)
	for i := range out {
		out[i] = 100 + i
	}
	return out
}

func groupedBuilder(k, g, n int) explore.Builder {
	return func() *sim.System {
		sys := sim.NewSystem()
		for _, p := range setconsensus.Grouped(sys, "sc", k, g, proposals(n)) {
			sys.Spawn(p)
		}
		return sys
	}
}

func TestGroupedExhaustive(t *testing.T) {
	// 2-set consensus among 4 processes with two compare&swap-(3)
	// registers: never more than 2 distinct decisions, always valid.
	k, g, n := 3, 2, 4
	props := proposals(n)
	c := explore.Run(groupedBuilder(k, g, n), explore.Options{MaxRuns: 30000}, func(res *sim.Result) error {
		if err := setconsensus.CheckKSet(res, g); err != nil {
			return err
		}
		return setconsensus.CheckValidity(res, props)
	})
	if len(c.Violations) != 0 {
		t.Errorf("violation: %s", explore.FormatSchedule(c.Violations[0].Schedule))
	}
	if c.Complete == 0 {
		t.Error("no complete runs enumerated")
	}
}

func TestGroupedReachesFullSpread(t *testing.T) {
	// Some schedule must produce g distinct decisions (the bound is
	// tight): look for an outcome with 2 distinct values.
	found := false
	explore.Visit(groupedBuilder(3, 2, 4), explore.Options{}, func(o explore.Outcome) bool {
		if o.Result.Halted {
			return true
		}
		if len(o.Result.DistinctDecisions()) == 2 {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Error("no schedule produced 2 distinct decisions; the 2-set bound should be tight")
	}
}

func TestGroupedManyRandomSchedules(t *testing.T) {
	// Larger instance: 3-set consensus among 9 processes with
	// compare&swap-(4) registers, random schedules and crashes.
	k, g, n := 4, 3, 9
	props := proposals(n)
	for seed := int64(0); seed < 25; seed++ {
		sys := sim.NewSystem()
		for _, p := range setconsensus.Grouped(sys, "sc", k, g, props) {
			sys.Spawn(p)
		}
		res, err := sys.Run(sim.Config{
			Scheduler: sim.Random(seed),
			Faults:    sim.RandomCrashes(seed, 0.1, 2),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := setconsensus.CheckKSet(res, g); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		if err := setconsensus.CheckValidity(res, props); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestGroupedCapacityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Grouped with oversize groups did not panic")
		}
	}()
	sys := sim.NewSystem()
	setconsensus.Grouped(sys, "sc", 3, 1, proposals(3)) // group of 3 > k−1=2
}

func TestTrivial(t *testing.T) {
	props := proposals(3)
	sys := sim.NewSystem()
	for _, p := range setconsensus.Trivial(props) {
		sys.Spawn(p)
	}
	res, err := sys.Run(sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := setconsensus.CheckKSet(res, 3); err != nil {
		t.Error(err)
	}
	if err := setconsensus.CheckKSet(res, 2); err == nil {
		t.Error("3 distinct decisions passed a 2-set check")
	}
	if err := setconsensus.CheckValidity(res, props); err != nil {
		t.Error(err)
	}
}
