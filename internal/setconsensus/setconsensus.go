// Package setconsensus provides k-set consensus protocols and verdicts
// (Chaudhuri, reference [6] of the paper). The l-set consensus task is
// the target of the paper's reduction: an emulation of a leader
// election algorithm with a compare&swap-(k) register yields a
// (k−1)!-set consensus algorithm among (k−1)!+1 processes using only
// read/write registers, which is impossible.
package setconsensus

import (
	"fmt"

	"repro/internal/objects"
	"repro/internal/registers"
	"repro/internal/sim"
)

// Grouped returns n programs solving g-set consensus for arbitrary n
// using g compare&swap-(k) registers: processes are partitioned into g
// groups round-robin, each group runs CAS-based consensus on its own
// register, and at most one value survives per group. Group sizes must
// fit the alphabet: ceil(n/g) ≤ k−1.
func Grouped(sys *sim.System, name string, k, g int, proposals []sim.Value) []sim.Program {
	n := len(proposals)
	groupSize := (n + g - 1) / g
	if groupSize > k-1 {
		panic(fmt.Sprintf("setconsensus: group size %d exceeds compare&swap-(%d) capacity %d",
			groupSize, k, k-1))
	}
	cass := make([]*objects.CAS, g)
	anns := make([]*registers.Array, g)
	for j := 0; j < g; j++ {
		cass[j] = objects.NewCAS(fmt.Sprintf("%s.cas[%d]", name, j), k)
		sys.Add(cass[j])
		anns[j] = registers.NewArray(sys, fmt.Sprintf("%s.ann[%d]", name, j), n, nil)
	}
	progs := make([]sim.Program, n)
	for i := 0; i < n; i++ {
		i := i
		group := i % g
		rank := i / g // position within the group: symbol rank+1
		progs[i] = func(e *sim.Env) (sim.Value, error) {
			ann := anns[group]
			cas := cass[group]
			ann.Reg(i).Write(e, proposals[i])
			cas.CompareAndSwap(e, objects.Bottom, objects.Symbol(rank+1))
			winnerRank := int(cas.Read(e)) - 1
			winnerProc := winnerRank*g + group
			return ann.Read(e, winnerProc), nil
		}
	}
	return progs
}

// Trivial returns n programs solving n-set consensus with no
// communication at all: everyone decides its own proposal. It is the
// degenerate upper edge of the task family, used as a baseline.
func Trivial(proposals []sim.Value) []sim.Program {
	progs := make([]sim.Program, len(proposals))
	for i := range progs {
		i := i
		progs[i] = func(*sim.Env) (sim.Value, error) { return proposals[i], nil }
	}
	return progs
}

// CheckKSet fails if more than kk distinct values were decided.
func CheckKSet(res *sim.Result, kk int) error {
	if d := res.DistinctDecisions(); len(d) > kk {
		return fmt.Errorf("setconsensus: %d distinct decisions %v, bound %d", len(d), d, kk)
	}
	return nil
}

// CheckValidity fails if a decided value is not among the proposals.
func CheckValidity(res *sim.Result, proposals []sim.Value) error {
	allowed := make(map[sim.Value]bool, len(proposals))
	for _, p := range proposals {
		allowed[p] = true
	}
	for _, id := range res.Decided() {
		if !allowed[res.Values[id]] {
			return fmt.Errorf("setconsensus: validity violated: process %d decided %v", id, res.Values[id])
		}
	}
	return nil
}
