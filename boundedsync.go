// Package repro is a laboratory for bounded-size synchronization
// objects, reproducing Afek & Stupp, "Delimiting the Power of Bounded
// Size Synchronization Objects" (PODC 1994).
//
// The paper's question: a compare&swap register is "universal" in
// Herlihy's hierarchy, but what if it can hold only k distinct values?
// Its answers, all executable here:
//
//   - the register alone elects a leader among exactly k−1 processes
//     (Burns–Cruz–Loui regime, election.DirectCAS);
//   - adding read/write registers helps — capacity grows like O(k!)
//     (election.Permutation) — but wait-freedom is the hard part;
//   - and it cannot grow forever: the reduction by emulation
//     (internal/core, re-exported below) turns any leader election for
//     O(k^(k²+3)) processes into (k−1)!-set consensus among (k−1)!+1
//     processes over read/write registers, which is impossible.
//
// This facade re-exports the library's main entry points; the full API
// lives in the internal packages, organized per DESIGN.md:
//
//	sim          deterministic shared-memory simulator
//	registers    SWMR/MWMR registers, tagged registers, atomic snapshot
//	objects      compare&swap-(k), test&set, fetch&add, RMW(k), …
//	spec, linearize  sequential specs + linearizability checker
//	explore      exhaustive schedule exploration, valence analysis
//	consensus, setconsensus, election  task protocols and verdicts
//	core         the paper's emulation (Figures 1–6)
//	agents       the Lemma 1.1 move/jump game
//	hierarchy    Herlihy-hierarchy witnesses
//	universal    Herlihy's universal construction over CAS(k) cells
package repro

import (
	"repro/internal/agents"
	"repro/internal/core"
	"repro/internal/election"
	"repro/internal/hierarchy"
	"repro/internal/objects"
	"repro/internal/sim"
)

// Re-exported core types: the simulator vocabulary.
type (
	// System is a simulated asynchronous shared-memory machine.
	System = sim.System
	// Env is a process's handle to shared memory.
	Env = sim.Env
	// Program is the code of one simulated process.
	Program = sim.Program
	// ProcID identifies a process.
	ProcID = sim.ProcID
	// Value is the type of shared data.
	Value = sim.Value
	// Scheduler picks which process steps next.
	Scheduler = sim.Scheduler
	// Config controls a run (scheduler, faults, step bounds).
	Config = sim.Config
	// Result reports a run's outcome.
	Result = sim.Result
	// Symbol is a value of a bounded alphabet Σ = {⊥, 0, …, k−2}.
	Symbol = objects.Symbol
	// CAS is a compare&swap-(k) register.
	CAS = objects.CAS
	// Reduction is the paper's emulation (algorithm B of Claim 1).
	Reduction = core.Reduction
	// Game is the Lemma 1.1 move/jump game.
	Game = agents.Game
)

// Bottom is ⊥, the initial compare&swap value.
const Bottom = objects.Bottom

// NewSystem returns an empty simulated machine.
func NewSystem() *System { return sim.NewSystem() }

// NewCAS returns a compare&swap-(k) register named name.
func NewCAS(name string, k int) *CAS { return objects.NewCAS(name, k) }

// RoundRobin returns the deterministic fair scheduler.
func RoundRobin() Scheduler { return sim.RoundRobin() }

// Random returns a seeded uniformly random scheduler.
func Random(seed int64) Scheduler { return sim.Random(seed) }

// DirectElection returns n programs electing a leader with one
// compare&swap-(k) register alone (capacity k−1; Burns–Cruz–Loui).
func DirectElection(cas *CAS, n int) []Program { return election.DirectCAS(cas, n) }

// AnnouncedElection returns programs electing a leader among processes
// with arbitrary identities using the register plus an announce array.
func AnnouncedElection(sys *System, cas *CAS, identities []Value) []Program {
	return election.AnnouncedCAS(sys, cas, identities)
}

// PermutationElection returns PermutationCapacity(k) programs electing
// a leader over the first-use permutation tree — the Θ((k−1)!) capacity
// shape of the paper's companion algorithm [Afek–Stupp FOCS '93].
func PermutationElection(sys *System, cas *CAS, identities []Value) []Program {
	return election.Permutation(sys, cas, identities)
}

// PermutationCapacity returns how many processes PermutationElection
// supports over compare&swap-(k): Σ_{j=1..k−1} (k−1)!/(k−1−j)!.
func PermutationCapacity(k int) int { return election.Capacity(k) }

// RegisterAloneCapacity returns k−1, the Burns–Cruz–Loui capacity of
// the bare register.
func RegisterAloneCapacity(k int) int { return k - 1 }

// GroupBound returns (k−1)!, the paper's bound on emulator groups and
// on distinct set-consensus decisions (Claim 1).
func GroupBound(k int) int { return core.MaxLabels(k) }

// NewReduction assembles the paper's emulation of algorithm A over one
// compare&swap-(k): m = (k−1)!+1 emulators on read/write registers.
func NewReduction(cfg core.Config) *Reduction { return core.NewReduction(cfg) }

// FirstValueAlgorithm returns the first-value consensus algorithm — the
// cleanest correct input for the reduction's census (E1).
func FirstValueAlgorithm(k, n int) *core.Algorithm { return core.FirstValueA(k, n) }

// NewAgentGame starts a Lemma 1.1 move/jump game on the complete
// directed graph over k nodes with agents at the given start positions.
func NewAgentGame(k int, start []int) (*Game, error) { return agents.New(k, start) }

// AgentMoveBound returns the lemma's m^k bound on moves before a
// painted cycle.
func AgentMoveBound(m, k int) int { return agents.MoveBound(m, k) }

// HierarchyTable returns the Herlihy-hierarchy rows the paper refines,
// instantiated for compare&swap-(k).
func HierarchyTable(k int) []hierarchy.Level { return hierarchy.Table(k) }
