// Election capacity: the paper's headline, measured. For each alphabet
// size k this example (1) elects k−1 leaders with the bare register,
// (2) elects Capacity(k) ≈ e·(k−1)! leaders with the permutation
// protocol over the register plus read/write memory, and (3) shows the
// wait-freedom gap: crashing one critical process stalls the
// permutation protocol — the very difficulty the paper's emulation
// machinery quantifies with the O(k^(k²+3)) bound.
//
//	go run ./examples/electioncapacity
package main

import (
	"fmt"
	"log"

	"repro/internal/election"
	"repro/internal/objects"
	"repro/internal/sim"
)

func main() {
	for k := 2; k <= 5; k++ {
		direct := k - 1
		perm := election.Capacity(k)
		fmt.Printf("k=%d: register alone elects %d; +r/w registers elects %d\n", k, direct, perm)

		ids := make([]sim.Value, perm)
		for i := range ids {
			ids[i] = fmt.Sprintf("worker-%d", i)
		}
		sys := sim.NewSystem()
		cas := objects.NewCAS("cas", k)
		sys.Add(cas)
		for _, p := range election.Permutation(sys, cas, ids) {
			sys.Spawn(p)
		}
		res, err := sys.Run(sim.Config{Scheduler: sim.Random(int64(k)), MaxTotalSteps: 1 << 24})
		if err != nil {
			log.Fatal(err)
		}
		if err := election.CheckElection(res, ids); err != nil {
			log.Fatalf("k=%d: %v", k, err)
		}
		fmt.Printf("      permutation election of %d processes agreed on %v in %d steps; first-use chain %v\n",
			perm, res.DistinctDecisions()[0], res.TotalSteps, cas.FirstUses())
	}

	// The wait-freedom gap, concretely: crash the only process that can
	// extend the chain and everyone else spins forever.
	fmt.Println("\nwait-freedom gap (k=3): crash the frontier owner after the first transition…")
	k := 3
	n := election.Capacity(k)
	ids := make([]sim.Value, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("worker-%d", i)
	}
	sys := sim.NewSystem()
	cas := objects.NewCAS("cas", k)
	sys.Add(cas)
	for _, p := range election.Permutation(sys, cas, ids) {
		sys.Spawn(p)
	}
	var warmup []sim.ProcID
	for i := 0; i < 7; i++ {
		warmup = append(warmup, 0) // process 0 wins slot (⊥→0) and marks it
	}
	res, err := sys.Run(sim.Config{
		Scheduler:       sim.ReplayThen(warmup, sim.RoundRobin()),
		Faults:          sim.CrashAt(map[int][]sim.ProcID{7: {1}}), // slot (0→1)'s only owner
		MaxStepsPerProc: 200,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("…%d processes decided; survivors spun into the %d-step limit: not wait-free.\n",
		len(res.Decided()), 200)
	fmt.Println("The paper proves no amount of cleverness pushes wait-free capacity past O(k^(k²+3)).")
}
