// Quickstart: elect a leader among k−1 processes with one
// compare&swap-(k) register, the Burns–Cruz–Loui baseline of the paper,
// using the public facade.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	const k = 5 // alphabet {⊥, 0, 1, 2, 3}: capacity k−1 = 4 processes

	sys := repro.NewSystem()
	cas := repro.NewCAS("cas", k)
	sys.Add(cas)

	// Four processes race to claim a symbol; the register's final value
	// names the winner, and every process — winner or loser — decides it.
	for _, p := range repro.DirectElection(cas, k-1) {
		sys.Spawn(p)
	}

	res, err := sys.Run(repro.Config{Scheduler: repro.Random(42)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("decisions:       ", res.Values)
	fmt.Println("register history:", cas.History())
	d := res.DistinctDecisions()
	if len(d) != 1 {
		log.Fatalf("election split: %v", d)
	}
	fmt.Printf("leader elected: process %v (unanimous, %d shared steps)\n", d[0], res.TotalSteps)

	// The same register cannot host a fifth process: its alphabet is
	// the resource the paper measures.
	fmt.Printf("capacity of compare&swap-(%d) alone: %d processes\n", k, repro.RegisterAloneCapacity(k))
	fmt.Printf("with read/write registers (permutation protocol): %d processes\n", repro.PermutationCapacity(k))
}
