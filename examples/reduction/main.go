// Reduction: the paper's Section 3, live. Three emulators — plain
// read/write processes — jointly emulate an algorithm that uses a
// compare&swap-(3) register, maintaining the shared history tree of
// Figure 1, suspending v-processes to pay for register transitions, and
// splitting into groups labeled by the permutation of first-used
// values. The decisions they adopt form a (k−1)!-set consensus: were
// the emulated algorithm a leader election for too many processes, this
// would contradict the set-consensus impossibility — hence the paper's
// bound.
//
//	go run ./examples/reduction
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	const k = 3
	m := core.MaxLabels(k) + 1 // (k−1)!+1 = 3 emulators

	fmt.Printf("k=%d: %d emulators, at most (k−1)! = %d groups\n\n", k, m, core.MaxLabels(k))

	// BiasedA makes different emulators prefer different first values,
	// so the group split is visible.
	r := core.NewReduction(core.Config{K: k, Quota: 5, A: core.BiasedA(k, m, 80)})
	res, err := r.System().Run(sim.Config{Scheduler: sim.Random(4), MaxTotalSteps: 1 << 23})
	if err != nil {
		log.Fatal(err)
	}
	if res.Halted {
		log.Fatal("emulation did not terminate")
	}
	rep := r.Analyze(res)
	fmt.Print(core.DescribeReport(rep))

	v := r.FinalView()
	fmt.Println("\nconstructed runs:")
	for _, l := range v.MaximalLabels() {
		h := core.ComputeHistory(v, l)
		fmt.Printf("  %s: compare&swap history %v\n", l, h.Seq)
		g := core.NewExcessGraph(v, l, h)
		fmt.Printf("     excess on ⊥→0: %d, ⊥→1: %d (suspended v-processes not yet consumed)\n",
			g.Weight(0, 1), g.Weight(0, 2))
	}

	if err := r.Audit(); err != nil {
		log.Fatalf("audit failed: %v", err)
	}
	fmt.Println("\naudit passed: every history transition is paid by a suspended v-process,")
	fmt.Println("every released c&s matches a later transition, and groups stay within (k−1)!.")
	fmt.Printf("distinct decisions: %d ≤ %d — a %d-set consensus among %d read/write processes.\n",
		rep.Distinct, rep.MaxLabels, rep.MaxLabels, m)
}
