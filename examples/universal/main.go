// Universal construction: why "universal" is not unconditional. A
// wait-free shared counter is built from compare&swap-(k) consensus
// cells (Herlihy's construction); it works for n ≤ k−1 processes, the
// constructor refuses more — one k-valued cell cannot arbitrate k
// proposers — and a bounded cell budget runs dry. Both failure modes
// are the paper's motivation: bounded-size strong objects are not
// universal.
//
//	go run ./examples/universal
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/universal"
)

func main() {
	const k = 4
	const n = 3 // = k−1: the most compare&swap-(4) cells can host

	sys := sim.NewSystem()
	u, err := universal.NewUniversal(sys, "ctr", spec.CounterSpec{}, n, k, 0)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		sess := u.NewSession()
		sys.Spawn(func(e *sim.Env) (sim.Value, error) {
			var got []int
			for j := 0; j < 4; j++ {
				v, err := sess.Invoke(e, universal.Op{Kind: "add", Args: []sim.Value{1}})
				if err != nil {
					return nil, err
				}
				got = append(got, v.(int))
			}
			return got, nil
		})
	}
	res, err := sys.Run(sim.Config{Scheduler: sim.Random(11)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("universal counter over compare&swap-(%d), %d processes × 4 add(1):\n", k, n)
	for i := 0; i < n; i++ {
		if res.Errors[i] != nil {
			log.Fatalf("process %d: %v", i, res.Errors[i])
		}
		fmt.Printf("  p%d tickets: %v\n", i, res.Values[i])
	}
	fmt.Println("every ticket 0..11 issued exactly once: linearizable, wait-free.")

	// Failure mode 1: too many processes for the cell alphabet.
	if _, err := universal.NewUniversal(sim.NewSystem(), "u2", spec.CounterSpec{}, k, k, 0); err != nil {
		fmt.Printf("\nn=%d over compare&swap-(%d): %v\n", k, k, err)
	}

	// Failure mode 2: bounded cell budget exhausts.
	sys2 := sim.NewSystem()
	u2, err := universal.NewUniversal(sys2, "small", spec.CounterSpec{}, 2, 3, 6)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		sess := u2.NewSession()
		sys2.Spawn(func(e *sim.Env) (sim.Value, error) {
			for {
				if _, err := sess.Invoke(e, universal.Op{Kind: "add", Args: []sim.Value{1}}); err != nil {
					return nil, err
				}
			}
		})
	}
	res2, err := sys2.Run(sim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if errors.Is(res2.Errors[i], universal.ErrLogExhausted) {
			fmt.Printf("with only 6 cells: process %d stopped — %v\n", i, res2.Errors[i])
			break
		}
	}
	fmt.Println("bounded size + bounded count = not universal; the paper quantifies exactly how much size buys.")
}
