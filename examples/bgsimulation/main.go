// BG simulation: the related-work contrast. The paper's emulation
// divides algorithm A's processes among the emulators; Borowsky and
// Gafni's simulation instead has every simulator run EVERY simulated
// process's code, with a safe-agreement object fixing each step's
// result. This example runs three simulators over a four-process
// flood-min protocol, shows the decisions coincide across simulators,
// then crashes a simulator inside a safe-agreement window and shows
// exactly one simulated process blocks — the resilience trade the
// technique is famous for.
//
//	go run ./examples/bgsimulation
package main

import (
	"fmt"
	"log"

	"repro/internal/bgsim"
	"repro/internal/sim"
)

func main() {
	inputs := []int{42, 7, 19, 23}
	fmt.Println("simulated protocol: 4-process flood-min over 2 rounds, inputs", inputs)

	// Crash-free: every simulator extracts the same decisions.
	sys := sim.NewSystem()
	s := bgsim.NewSimulation(sys, bgsim.FloodMin(4, 2, inputs), 3)
	for i := 0; i < 3; i++ {
		sys.Spawn(s.Simulator())
	}
	res, err := sys.Run(sim.Config{Scheduler: sim.Random(3)})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		out := res.Values[i].(bgsim.Outcome)
		fmt.Printf("simulator %d extracted decisions %v\n", i, out.Decisions)
	}

	// One crash: at most one simulated process blocks.
	fmt.Println("\nnow crash simulator 0 mid-run…")
	sys2 := sim.NewSystem()
	s2 := bgsim.NewSimulation(sys2, bgsim.FloodMin(4, 2, inputs), 3)
	s2.MaxPolls = 60
	for i := 0; i < 3; i++ {
		sys2.Spawn(s2.Simulator())
	}
	res2, err := sys2.Run(sim.Config{
		Scheduler: sim.Random(5),
		Faults:    sim.CrashAfterSteps(0, 30),
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		out := res2.Values[i].(bgsim.Outcome)
		fmt.Printf("survivor %d: decisions %v, blocked codes %v\n", i, out.Decisions, out.Blocked)
	}
	fmt.Println("\nThe paper's emulation (examples/reduction) avoids total replication —")
	fmt.Println("compare&swap steps cannot be replayed by everyone, so the codes are")
	fmt.Println("divided among emulators and suspended v-processes pay for transitions.")
}
