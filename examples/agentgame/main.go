// Agent game: Lemma 1.1, interactively traced. Two agents walk the
// complete directed graph on three nodes; every move paints an edge,
// jumps are allowed only onto freshly-moved-into nodes, and the run
// stops before the painted edges close a cycle. The lemma (due to Noga
// Alon) bounds the moves by m^k via a potential function — the exact
// combinatorial fact that lets the paper's emulation always find an
// attachment point in the history tree.
//
//	go run ./examples/agentgame
package main

import (
	"fmt"
	"log"

	"repro/internal/agents"
)

func main() {
	const k, m = 3, 2
	g, err := agents.New(k, []int{0, 0})
	if err != nil {
		log.Fatal(err)
	}

	script := []struct {
		jump  bool
		agent int
		to    int
	}{
		{false, 0, 1}, // paint 0→1
		{false, 1, 2}, // paint 0→2
		{true, 0, 2},  // agent 0 may jump to 2: agent 1 just moved in
		{false, 0, 1}, // paint 2→1
	}
	for _, step := range script {
		var err error
		if step.jump {
			err = g.Jump(step.agent, step.to)
		} else {
			err = g.Move(step.agent, step.to)
		}
		if err != nil {
			log.Fatalf("script step %+v: %v", step, err)
		}
		fmt.Printf("%s\n", g.Log()[len(g.Log())-1])
	}

	// Closing 1→0 or 1→2 would complete a cycle; the game refuses.
	if err := g.Move(0, 0); err == nil {
		log.Fatal("cycle-closing move was accepted")
	} else {
		fmt.Printf("move 1→0 refused: %v\n", err)
	}

	fmt.Printf("\nmoves made: %d (bound m^k = %d)\n", g.Moves(), agents.MoveBound(m, k))
	if err := g.VerifyPotentialLaw([]int{0, 0}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("potential law verified: every move descends the final topological ranking")

	// Sweep: how close do random players get to the bound?
	fmt.Println("\nrandom-play sweep:")
	for mm := 2; mm <= 4; mm++ {
		for kk := 2; kk <= 5; kk++ {
			best := 0
			for seed := int64(0); seed < 200; seed++ {
				gg, _, err := agents.RandomRun(mm, kk, seed, 100000)
				if err != nil {
					log.Fatal(err)
				}
				if gg.Moves() > best {
					best = gg.Moves()
				}
			}
			fmt.Printf("  m=%d k=%d: best %3d of bound %d\n", mm, kk, best, agents.MoveBound(mm, kk))
		}
	}
}
