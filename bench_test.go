// Benchmarks regenerate the paper's quantitative claims (EXPERIMENTS.md
// records claim vs. measured). The paper is a theory extended abstract
// with no measurement tables; each benchmark below corresponds to one
// claim row of DESIGN.md §4 and reports the claim's quantity as a
// benchmark metric alongside the usual time/op.
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/agents"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/election"
	"repro/internal/explore"
	"repro/internal/hardware"
	"repro/internal/hierarchy"
	"repro/internal/objects"
	"repro/internal/registers"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/universal"
)

// BenchmarkE1Reduction: Claim 1 / Theorem 1 — the emulation of an
// algorithm over compare&swap-(k) by m = (k−1)!+1 read/write emulators
// decides at most (k−1)! distinct values. Metrics: distinct decisions,
// the (k−1)! bound, and total shared steps.
func BenchmarkE1Reduction(b *testing.B) {
	for _, tc := range []struct{ k, n int }{{3, 112}, {4, 168}, {5, 500}} {
		k, n := tc.k, tc.n
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var distinct, steps int
			for i := 0; i < b.N; i++ {
				r := core.NewReduction(core.Config{K: k, Quota: 3, A: core.FirstValueA(k, n)})
				res, err := r.System().Run(sim.Config{
					Scheduler: sim.Random(int64(i)), MaxTotalSteps: 1 << 23, DisableTrace: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				rep := r.Analyze(res)
				if len(rep.Errors) != 0 {
					b.Fatalf("emulator errors: %v", rep.Errors)
				}
				if rep.Distinct > rep.MaxLabels {
					b.Fatalf("census violated: %d > %d", rep.Distinct, rep.MaxLabels)
				}
				if err := r.Audit(); err != nil {
					b.Fatal(err)
				}
				distinct += rep.Distinct
				steps += res.TotalSteps
			}
			b.ReportMetric(float64(distinct)/float64(b.N), "distinct-decisions")
			b.ReportMetric(float64(core.MaxLabels(k)), "bound-(k-1)!")
			b.ReportMetric(float64(steps)/float64(b.N), "shared-steps")
		})
	}
}

// BenchmarkE2Labels: group splitting — biased contention splits the
// emulators into multiple first-use groups, never beyond (k−1)!.
func BenchmarkE2Labels(b *testing.B) {
	k := 3
	m := core.MaxLabels(k) + 1
	var groups int
	for i := 0; i < b.N; i++ {
		r := core.NewReduction(core.Config{K: k, Quota: 5, A: core.BiasedA(k, m, 60)})
		res, err := r.System().Run(sim.Config{
			Scheduler: sim.Random(int64(i)), MaxTotalSteps: 1 << 23, DisableTrace: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		rep := r.Analyze(res)
		if rep.Groups > rep.MaxLabels {
			b.Fatalf("groups %d exceed %d", rep.Groups, rep.MaxLabels)
		}
		groups += rep.Groups
	}
	b.ReportMetric(float64(groups)/float64(b.N), "groups")
	b.ReportMetric(float64(core.MaxLabels(k)), "bound-(k-1)!")
}

// BenchmarkE3BurnsBound: register-alone election capacity is exactly
// k−1 — all schedules agree at n = k−1 (checked exhaustively).
func BenchmarkE3BurnsBound(b *testing.B) {
	for _, k := range []int{3, 4, 5} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			ids := make([]sim.Value, k-1)
			for i := range ids {
				ids[i] = i
			}
			var runs int
			for i := 0; i < b.N; i++ {
				builder := func() *sim.System {
					sys := sim.NewSystem()
					cas := objects.NewCAS("cas", k)
					sys.Add(cas)
					for _, p := range election.DirectCAS(cas, k-1) {
						sys.Spawn(p)
					}
					return sys
				}
				c := explore.Run(builder, explore.Options{MaxRuns: 100000}, func(res *sim.Result) error {
					return election.CheckElection(res, ids)
				})
				if len(c.Violations) != 0 {
					b.Fatal("election violated")
				}
				runs += c.Complete
			}
			b.ReportMetric(float64(k-1), "capacity")
			b.ReportMetric(float64(runs)/float64(b.N), "schedules-verified")
		})
	}
}

// BenchmarkE4CapacitySweep: with read/write registers the permutation
// protocol elects Capacity(k) ≈ e·(k−1)! processes — the O(k!) shape of
// the paper's companion algorithm — verified end to end per iteration.
func BenchmarkE4CapacitySweep(b *testing.B) {
	for _, k := range []int{3, 4, 5} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			n := election.Capacity(k)
			ids := make([]sim.Value, n)
			for i := range ids {
				ids[i] = fmt.Sprintf("p%d", i)
			}
			var steps int
			for i := 0; i < b.N; i++ {
				sys := sim.NewSystem()
				cas := objects.NewCAS("cas", k)
				sys.Add(cas)
				for _, p := range election.Permutation(sys, cas, ids) {
					sys.Spawn(p)
				}
				res, err := sys.Run(sim.Config{
					Scheduler: sim.Random(int64(i)), MaxTotalSteps: 1 << 24, DisableTrace: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := election.CheckElection(res, ids); err != nil {
					b.Fatal(err)
				}
				steps += res.TotalSteps
			}
			b.ReportMetric(float64(n), "capacity")
			b.ReportMetric(float64(k-1), "register-alone-capacity")
			b.ReportMetric(float64(steps)/float64(b.N), "shared-steps")
		})
	}
}

// BenchmarkE5AgentGame: Lemma 1.1 — random play never exceeds the m^k
// move bound and always satisfies the potential law.
func BenchmarkE5AgentGame(b *testing.B) {
	for _, mk := range []struct{ m, k int }{{2, 3}, {3, 4}, {4, 5}} {
		b.Run(fmt.Sprintf("m=%d,k=%d", mk.m, mk.k), func(b *testing.B) {
			var best int
			for i := 0; i < b.N; i++ {
				g, start, err := agents.RandomRun(mk.m, mk.k, int64(i), 100000)
				if err != nil {
					b.Fatal(err)
				}
				if g.Moves() > agents.MoveBound(mk.m, mk.k) {
					b.Fatal("move bound violated")
				}
				if err := g.VerifyPotentialLaw(start); err != nil {
					b.Fatal(err)
				}
				if g.Moves() > best {
					best = g.Moves()
				}
			}
			b.ReportMetric(float64(best), "best-moves")
			b.ReportMetric(float64(agents.MoveBound(mk.m, mk.k)), "bound-m^k")
		})
	}
}

// BenchmarkE6Hierarchy: consensus-number witnesses — test&set solves 2,
// fails 3; read/write fails 2.
func BenchmarkE6Hierarchy(b *testing.B) {
	cells := []struct {
		name   string
		check  func(n, maxRuns int, tunes ...explore.Tune) hierarchy.Witness
		n      int
		solves bool
	}{
		{"rw-2", hierarchy.CheckRW, 2, false},
		{"tas-2", hierarchy.CheckTAS, 2, true},
		{"tas-3", hierarchy.CheckTAS, 3, false},
		{"queue-2", hierarchy.CheckQueue, 2, true},
	}
	for _, cell := range cells {
		b.Run(cell.name, func(b *testing.B) {
			var runs int
			for i := 0; i < b.N; i++ {
				w := cell.check(cell.n, 100000)
				if w.Solves != cell.solves {
					b.Fatalf("%s/%d: solves=%v, want %v", w.Object, w.N, w.Solves, cell.solves)
				}
				runs += w.Runs
			}
			b.ReportMetric(float64(runs)/float64(b.N), "schedules")
		})
	}
}

// BenchmarkE7HistoryTree: ComputeHistory and the excess-graph stability
// checks over a real emulation's final state.
func BenchmarkE7HistoryTree(b *testing.B) {
	r := core.NewReduction(core.Config{K: 3, Quota: 6, A: core.CyclingA(3, 90, 4)})
	res, err := r.System().Run(sim.Config{Scheduler: sim.RoundRobin(), MaxTotalSteps: 1 << 23, DisableTrace: true})
	if err != nil || res.Halted {
		b.Fatalf("setup: %v halted=%v", err, res.Halted)
	}
	v := r.FinalView()
	labels := v.MaximalLabels()
	b.ResetTimer()
	var histLen int
	for i := 0; i < b.N; i++ {
		for _, l := range labels {
			h := core.ComputeHistory(v, l)
			histLen += len(h.Seq)
			g := core.NewExcessGraph(v, l, h)
			for _, comp := range g.SCCs([]objects.Symbol{0, 1, 2}, 1) {
				g.IsStable(comp, 3, r.Config().M)
			}
		}
	}
	b.ReportMetric(float64(histLen)/float64(b.N), "history-symbols")
}

// BenchmarkE8Rebalance: the Figure 5 release path — cycling workloads
// accumulate unmatched transitions and recycle suspended v-processes.
func BenchmarkE8Rebalance(b *testing.B) {
	var released int
	for i := 0; i < b.N; i++ {
		r := core.NewReduction(core.Config{K: 3, Quota: 6, A: core.CyclingA(3, 90, 4)})
		res, err := r.System().Run(sim.Config{Scheduler: sim.RoundRobin(), MaxTotalSteps: 1 << 23, DisableTrace: true})
		if err != nil || res.Halted {
			b.Fatalf("%v halted=%v", err, res.Halted)
		}
		if err := r.Audit(); err != nil {
			b.Fatal(err)
		}
		v := r.FinalView()
		for _, l := range v.MaximalLabels() {
			for _, c := range core.ReleasedCount(v, l) {
				released += c
			}
		}
	}
	b.ReportMetric(float64(released)/float64(b.N), "releases")
}

// BenchmarkE9Universal: universality and its size limit — throughput of
// the universal counter at n = k−1 and the ops a bounded cell budget
// affords.
func BenchmarkE9Universal(b *testing.B) {
	for _, k := range []int{3, 4, 5} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			n := k - 1
			var ops int
			for i := 0; i < b.N; i++ {
				sys := sim.NewSystem()
				u, err := universal.NewUniversal(sys, "ctr", spec.CounterSpec{}, n, k, 0)
				if err != nil {
					b.Fatal(err)
				}
				for p := 0; p < n; p++ {
					sess := u.NewSession()
					sys.Spawn(func(e *sim.Env) (sim.Value, error) {
						for j := 0; j < 5; j++ {
							if _, err := sess.Invoke(e, universal.Op{Kind: "add", Args: []sim.Value{1}}); err != nil {
								return nil, err
							}
						}
						return nil, nil
					})
				}
				res, err := sys.Run(sim.Config{Scheduler: sim.Random(int64(i)), DisableTrace: true})
				if err != nil {
					b.Fatal(err)
				}
				for p := 0; p < n; p++ {
					if res.Errors[p] != nil {
						b.Fatal(res.Errors[p])
					}
				}
				ops += n * 5
			}
			b.ReportMetric(float64(ops)/float64(b.N), "ops")
			b.ReportMetric(float64(n), "max-processes")
		})
	}
}

// BenchmarkE10WaitFree: worst-case steps per process across the
// wait-free protocols under crash injection.
func BenchmarkE10WaitFree(b *testing.B) {
	var worst int
	for i := 0; i < b.N; i++ {
		sys := sim.NewSystem()
		cas := objects.NewCAS("cas", 5)
		sys.Add(cas)
		props := []sim.Value{10, 20, 30, 40}
		for _, p := range consensus.CASProtocol(sys, cas, props) {
			sys.Spawn(p)
		}
		res, err := sys.Run(sim.Config{
			Scheduler:    sim.Random(int64(i)),
			Faults:       sim.RandomCrashes(int64(i), 0.1, 2),
			DisableTrace: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := consensus.CheckAgreement(res); err != nil {
			b.Fatal(err)
		}
		for p, steps := range res.Steps {
			if !res.Crashed[p] && steps > worst {
				worst = steps
			}
		}
	}
	b.ReportMetric(float64(worst), "worst-steps-per-proc")
}

// BenchmarkAblationGateVsAtomic (DESIGN.md §5.1): the deterministic
// gate scheduler vs. raw goroutines on sync/atomic — the price of
// reproducibility.
func BenchmarkAblationGateVsAtomic(b *testing.B) {
	const n = 4
	b.Run("sim-gate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys := sim.NewSystem()
			cas := objects.NewCAS("cas", n+1)
			sys.Add(cas)
			for _, p := range election.DirectCAS(cas, n) {
				sys.Spawn(p)
			}
			if _, err := sys.Run(sim.Config{DisableTrace: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("raw-atomic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out := hardware.DirectElection(hardware.NewCAS(n+1), n)
			for _, w := range out[1:] {
				if w != out[0] {
					b.Fatal("raw election disagreed")
				}
			}
		}
	})
}

// BenchmarkAblationReplay (DESIGN.md §5.2): exploration cost as
// schedule counts grow, ablated across the three engines — the
// original per-node replay walker, the per-run path engine, and the
// path engine with state-fingerprint pruning.
func BenchmarkAblationReplay(b *testing.B) {
	engines := []struct {
		name string
		runs func(explore.Builder) int
	}{
		{"replay-walker", func(builder explore.Builder) int {
			n, _ := explore.VisitReplay(builder, explore.Options{}, func(explore.Outcome) bool { return true })
			return n
		}},
		{"path-engine", func(builder explore.Builder) int {
			n, _ := explore.Visit(builder, explore.Options{}, func(explore.Outcome) bool { return true })
			return n
		}},
		{"pruned", func(builder explore.Builder) int {
			c := explore.Run(builder, explore.Options{Prune: true}, nil)
			return c.Complete + c.Incomplete
		}},
	}
	for _, steps := range []int{2, 3, 4} {
		builder := func() *sim.System {
			sys := sim.NewSystem()
			r := registers.NewMWMR("r", 0)
			sys.Add(r)
			sys.SpawnN(2, func(sim.ProcID) sim.Program {
				return func(e *sim.Env) (sim.Value, error) {
					for j := 0; j < steps; j++ {
						r.Read(e)
					}
					return nil, nil
				}
			})
			return sys
		}
		for _, eng := range engines {
			b.Run(fmt.Sprintf("steps=%d/%s", steps, eng.name), func(b *testing.B) {
				var runs int
				for i := 0; i < b.N; i++ {
					runs += eng.runs(builder)
				}
				b.ReportMetric(float64(runs)/float64(b.N), "schedules")
			})
		}
	}
}

// BenchmarkAblationSnapshot (DESIGN.md §5.3): the linearizable
// double-collect scan vs. the broken single collect.
func BenchmarkAblationSnapshot(b *testing.B) {
	run := func(b *testing.B, unsafe bool) {
		for i := 0; i < b.N; i++ {
			sys := sim.NewSystem()
			snap := registers.NewSnapshot(sys, "s", 3, 0)
			for p := 0; p < 2; p++ {
				sys.Spawn(func(e *sim.Env) (sim.Value, error) {
					for v := 1; v <= 3; v++ {
						snap.Update(e, v)
					}
					return nil, nil
				})
			}
			sys.Spawn(func(e *sim.Env) (sim.Value, error) {
				for j := 0; j < 4; j++ {
					if unsafe {
						snap.UnsafeSingleCollect(e)
					} else {
						snap.Scan(e)
					}
				}
				return nil, nil
			})
			if _, err := sys.Run(sim.Config{Scheduler: sim.Random(int64(i)), DisableTrace: true}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("double-collect", func(b *testing.B) { run(b, false) })
	b.Run("single-collect-unsound", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationQuota (DESIGN.md §5.4): suspension quota vs. stall
// rate — too small a quota cannot pay for history transitions.
func BenchmarkAblationQuota(b *testing.B) {
	for _, quota := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("quota=%d", quota), func(b *testing.B) {
			var failures int
			for i := 0; i < b.N; i++ {
				r := core.NewReduction(core.Config{
					K: 3, Quota: quota, A: core.FirstValueA(3, 80), MaxIterations: 2000,
				})
				res, err := r.System().Run(sim.Config{
					Scheduler: sim.Random(int64(i)), MaxTotalSteps: 1 << 23, DisableTrace: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				rep := r.Analyze(res)
				failures += len(rep.Errors)
				if err := r.Audit(); err != nil {
					b.Fatal(err) // even stalls must never fabricate transitions
				}
			}
			b.ReportMetric(float64(failures)/float64(b.N), "stalled-emulators")
		})
	}
}
