#!/usr/bin/env sh
# Distributed-census chaos smoke: a censusd coordinator with two real
# censusworker processes, a worker kill -9 mid-lease, a coordinator
# kill -9 and restart over the same store, and a resurrection of the
# killed worker over its old state directory. Every census must come
# out bit-identical to a direct cmd/explore run (lease expiry requeues
# the orphaned roots; the generation guard rejects the resurrected
# worker's late deliveries as stale instead of double-counting them).
# Needs curl and jq. Run from the repo root; scripts/verify.sh invokes it.
set -eu

cd "$(dirname "$0")/.."

for tool in curl jq; do
	if ! command -v "$tool" >/dev/null 2>&1; then
		echo "dist_chaos: $tool not found; skipping distributed chaos smoke" >&2
		exit 0
	fi
done

work="$(mktemp -d)"
daemon_pid=""
w1_pid=""
w2_pid=""
w1b_pid=""
cleanup() {
	for pid in "$daemon_pid" "$w1_pid" "$w2_pid" "$w1b_pid"; do
		if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
			kill -9 "$pid" 2>/dev/null || true
			wait "$pid" 2>/dev/null || true
		fi
	done
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "== building censusd, censusworker, and explore"
go build -o "$work/censusd" ./cmd/censusd
go build -o "$work/censusworker" ./cmd/censusworker
go build -o "$work/explore" ./cmd/explore

start_daemon() {
	"$work/censusd" -addr 127.0.0.1:0 -dir "$work/data" \
		-workers 1 -checkpoint-every 1 \
		-lease-ttl 2s -worker-poll 100ms \
		>"$work/daemon.out" 2>"$work/daemon.err" &
	daemon_pid=$!
	i=0
	while [ $i -lt 100 ]; do
		addr="$(sed -n 's/^censusd: listening on //p' "$work/daemon.out" 2>/dev/null | head -n1)"
		if [ -n "$addr" ]; then
			base="http://$addr"
			return 0
		fi
		if ! kill -0 "$daemon_pid" 2>/dev/null; then
			echo "dist_chaos: coordinator died on startup:" >&2
			cat "$work/daemon.err" >&2
			exit 1
		fi
		i=$((i + 1))
		sleep 0.1
	done
	echo "dist_chaos: coordinator never reported its address" >&2
	exit 1
}

# start_worker DIR ID -> pid on stdout
start_worker() {
	"$work/censusworker" -coordinator "$base" -dir "$1" -id "$2" -poll 100ms \
		>>"$work/$2.log" 2>&1 &
	echo $!
}

submit() {
	curl -sS -X POST "$base/jobs" -d "$1" | jq -r .id
}

job_field() {
	curl -sS "$base/jobs/$1" | jq -r "$2"
}

health_field() {
	curl -sS "$base/healthz" | jq -r "$1"
}

# wait_health JQ_EXPR MIN TRIES LABEL
wait_health() {
	i=0
	while :; do
		v="$(health_field "$1" 2>/dev/null || echo 0)"
		[ "$v" -ge "$2" ] 2>/dev/null && return 0
		i=$((i + 1))
		if [ $i -gt "$3" ]; then
			echo "dist_chaos: FAIL — $4 (have $v, want >= $2)" >&2
			exit 1
		fi
		sleep 0.1
	done
}

echo "== starting coordinator"
start_daemon
echo "   listening at $base"

echo "== starting 2 workers"
w1_pid="$(start_worker "$work/w1" w1)"
w2_pid="$(start_worker "$work/w2" w2)"
wait_health .workers_live 2 100 "workers never registered"
echo "   both workers live"

echo "== submitting 3 jobs (rw3 is the kill target; cas runs symmetry-reduced)"
long_id="$(submit '{"protocol":"rw3","workers":1}')"
cas_id="$(submit '{"protocol":"cas","k":4,"n":3,"symmetry":true,"workers":2}')"
fa_id="$(submit '{"protocol":"fa2","workers":2}')"
echo "   jobs: $long_id $cas_id $fa_id"

echo "== waiting for an outstanding lease, then kill -9 worker w1"
i=0
while :; do
	leases="$(health_field .leases_active)"
	if [ "$leases" -ge 1 ] 2>/dev/null; then
		break
	fi
	i=$((i + 1))
	if [ $i -gt 600 ]; then
		echo "dist_chaos: FAIL — no lease ever granted" >&2
		exit 1
	fi
	sleep 0.05
done
kill -9 "$w1_pid"
wait "$w1_pid" 2>/dev/null || true
w1_pid=""
echo "   killed w1 mid-lease ($leases leases outstanding)"

echo "== waiting for the orphaned lease to expire and requeue"
wait_health .lease_expiries 1 300 "orphaned lease never expired"
echo "   lease expired and requeued"

echo "== kill -9 the coordinator mid-run, restart over the same store"
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
: >"$work/daemon.out"
start_daemon
echo "   coordinator back at $base (workers re-register implicitly)"

echo "== waiting for all jobs to finish"
for id in "$long_id" "$cas_id" "$fa_id"; do
	i=0
	while :; do
		state="$(job_field "$id" .state)"
		case "$state" in
		done) break ;;
		failed)
			echo "dist_chaos: FAIL — job $id failed: $(job_field "$id" .error)" >&2
			exit 1
			;;
		esac
		i=$((i + 1))
		if [ $i -gt 2400 ]; then
			echo "dist_chaos: FAIL — job $id stuck in state $state" >&2
			exit 1
		fi
		sleep 0.1
	done
done
echo "   all jobs done"

echo "== resurrecting w1 over its old state dir: late delivery must be rejected stale"
w1b_pid="$(start_worker "$work/w1" w1)"
wait_health .stale_results 1 600 "resurrected worker's delivery was never rejected as stale"
echo "   generation guard rejected the late delivery (stale_results >= 1)"

echo "== comparing distributed results against direct cmd/explore runs"
# Distributed results merge partial censuses from many processes, so
# the per-process prune and supervision telemetry are not part of the
# census content; drop them from both sides before diffing.
compare() {
	id="$1"
	shift
	curl -sS "$base/jobs/$id" | jq -S 'del(.result.supervision, .result.prune) | .result' >"$work/daemon.json"
	"$work/explore" "$@" -json -bivalence=false | jq -S 'del(.supervision, .prune)' >"$work/direct.json"
	if ! diff -u "$work/direct.json" "$work/daemon.json"; then
		echo "dist_chaos: FAIL — job $id census differs from the direct run" >&2
		exit 1
	fi
}
compare "$long_id" -protocol rw3 -workers 1
compare "$cas_id" -protocol cas -k 4 -n 3 -symmetry -workers 2
compare "$fa_id" -protocol fa2 -workers 2
echo "   all censuses bit-identical"

echo "== graceful shutdown"
kill -TERM "$w2_pid" 2>/dev/null || true
kill -TERM "$w1b_pid" 2>/dev/null || true
wait "$w2_pid" 2>/dev/null || true
wait "$w1b_pid" 2>/dev/null || true
w2_pid=""
w1b_pid=""
kill -TERM "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

echo "dist_chaos: OK"
