#!/usr/bin/env sh
# Runs the fault-injection benchmarks (internal/faults) and distills
# them into BENCH_faults.json at the repo root: one record per benchmark
# with ns/op and the runs/s census-throughput metric. Sibling of
# bench_explore.sh; the two halves are the wrapper-overhead comparison
# (bare vs fault-wrapped compare&swap) and the fault-placement census
# across engines.
#
#   scripts/bench_faults.sh [--force] [benchtime]     # default 2x
set -eu

cd "$(dirname "$0")/.."
. scripts/bench_env.sh
bench_filter_args "$@" && eval "set -- $bench_args"
benchtime="${1:-2x}"
bench_guard BENCH_faults.json

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkWrapOverhead|BenchmarkFaultCensus' -benchtime "$benchtime" \
	./internal/faults/ | tee "$raw"

awk -v cpus="$cpus" -v numcpu="$num_cpu" '
BEGIN { print "["; first = 1 }
$1 ~ /^Benchmark(WrapOverhead|FaultCensus)\// {
	name = $1; sub(/-[0-9]+$/, "", name)
	ns = ""; runs = ""
	for (i = 2; i <= NF; i++) {
		if ($(i) == "ns/op")  ns = $(i - 1)
		if ($(i) == "runs/s") runs = $(i - 1)
	}
	if (ns == "") next
	if (!first) print ","
	first = 0
	printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"runs_per_sec\": %s, \"cpus\": %s, \"num_cpu\": %s}", name, ns, runs, cpus, numcpu
}
END { print ""; print "]" }
' "$raw" > BENCH_faults.json

echo "wrote BENCH_faults.json ($(grep -c '"name"' BENCH_faults.json) entries)"
