#!/usr/bin/env sh
# Daemon chaos smoke: submit census jobs to a live cmd/censusd, kill -9
# the daemon mid-run, restart it over the same data directory, and
# assert every job completes with a census bit-identical to a direct
# (uninterrupted) cmd/explore run. Exercises the crash-safety story the
# daemon exists for: durable job store, per-root checkpointing, and
# restart-time requeue of in-flight work. Needs curl and jq.
# Run from the repo root; scripts/verify.sh invokes it.
set -eu

cd "$(dirname "$0")/.."

for tool in curl jq; do
	if ! command -v "$tool" >/dev/null 2>&1; then
		echo "daemon_chaos: $tool not found; skipping daemon chaos smoke" >&2
		exit 0
	fi
done

work="$(mktemp -d)"
daemon_pid=""
cleanup() {
	if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
		kill -9 "$daemon_pid" 2>/dev/null || true
		wait "$daemon_pid" 2>/dev/null || true
	fi
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "== building censusd and explore"
go build -o "$work/censusd" ./cmd/censusd
go build -o "$work/explore" ./cmd/explore

start_daemon() {
	"$work/censusd" -addr 127.0.0.1:0 -dir "$work/data" \
		-workers 2 -checkpoint-every 1 >"$work/daemon.out" 2>"$work/daemon.err" &
	daemon_pid=$!
	# The daemon prints "censusd: listening on <addr>" once bound.
	i=0
	while [ $i -lt 100 ]; do
		addr="$(sed -n 's/^censusd: listening on //p' "$work/daemon.out" 2>/dev/null | head -n1)"
		if [ -n "$addr" ]; then
			base="http://$addr"
			return 0
		fi
		if ! kill -0 "$daemon_pid" 2>/dev/null; then
			echo "daemon_chaos: daemon died on startup:" >&2
			cat "$work/daemon.err" >&2
			exit 1
		fi
		i=$((i + 1))
		sleep 0.1
	done
	echo "daemon_chaos: daemon never reported its address" >&2
	exit 1
}

submit() {
	curl -sS -X POST "$base/jobs" -d "$1" | jq -r .id
}

job_field() {
	curl -sS "$base/jobs/$1" | jq -r "$2"
}

echo "== starting censusd"
start_daemon
echo "   listening at $base"

echo "== submitting 3 jobs (rw3 is the long one we kill mid-run)"
long_id="$(submit '{"protocol":"rw3","workers":1}')"
cas_id="$(submit '{"protocol":"cas","k":4,"n":3,"workers":2}')"
fa_id="$(submit '{"protocol":"fa2"}')"
echo "   jobs: $long_id $cas_id $fa_id"

echo "== waiting for the long job to be mid-run, then kill -9"
i=0
while :; do
	state="$(job_field "$long_id" .state)"
	roots="$(job_field "$long_id" '.progress.roots_done // 0')"
	if [ "$state" = "running" ] && [ "$roots" -ge 1 ]; then
		break
	fi
	if [ "$state" = "done" ]; then
		echo "daemon_chaos: FAIL — long job finished before the kill; grow its tree" >&2
		exit 1
	fi
	i=$((i + 1))
	if [ $i -gt 600 ]; then
		echo "daemon_chaos: FAIL — long job never reached mid-run (state=$state roots=$roots)" >&2
		exit 1
	fi
	sleep 0.05
done
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
echo "   killed mid-run with roots_done=$roots"

echo "== restarting censusd over the same data dir"
: >"$work/daemon.out"
start_daemon
echo "   listening at $base"

echo "== waiting for all jobs to finish"
for id in "$long_id" "$cas_id" "$fa_id"; do
	i=0
	while :; do
		state="$(job_field "$id" .state)"
		case "$state" in
		done) break ;;
		failed)
			echo "daemon_chaos: FAIL — job $id failed: $(job_field "$id" .error)" >&2
			exit 1
			;;
		esac
		i=$((i + 1))
		if [ $i -gt 2400 ]; then
			echo "daemon_chaos: FAIL — job $id stuck in state $state" >&2
			exit 1
		fi
		sleep 0.1
	done
done

restarts="$(job_field "$long_id" .restarts)"
resumed="$(job_field "$long_id" '.checkpoint.resumed_roots // 0')"
if [ "$restarts" -lt 1 ]; then
	echo "daemon_chaos: FAIL — long job records $restarts restarts; the kill did not interrupt it" >&2
	exit 1
fi
if [ "$resumed" -lt 1 ]; then
	echo "daemon_chaos: FAIL — long job resumed $resumed roots; it reran instead of resuming" >&2
	exit 1
fi
echo "   long job survived: restarts=$restarts resumed_roots=$resumed"

echo "== comparing daemon results against direct cmd/explore runs"
# Daemon results must be bit-identical to uninterrupted direct runs.
# The daemon result omits the supervision block (live counters, not
# census content); drop it from both sides before diffing.
compare() {
	id="$1"
	shift
	curl -sS "$base/jobs/$id" | jq -S 'del(.result.supervision) | .result' >"$work/daemon.json"
	"$work/explore" "$@" -json -bivalence=false | jq -S 'del(.supervision)' >"$work/direct.json"
	if ! diff -u "$work/direct.json" "$work/daemon.json"; then
		echo "daemon_chaos: FAIL — job $id census differs from the direct run" >&2
		exit 1
	fi
}
compare "$long_id" -protocol rw3 -workers 1
compare "$cas_id" -protocol cas -k 4 -n 3 -workers 2
compare "$fa_id" -protocol fa2

echo "== graceful drain (SIGTERM)"
kill -TERM "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

echo "daemon_chaos: OK"
