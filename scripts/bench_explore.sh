#!/usr/bin/env sh
# Runs the exploration-engine benchmarks (internal/explore) and distills
# them into BENCH_explore.json at the repo root: one record per
# benchmark with ns/op and the runs/s census-throughput metric. Each
# record carries the host's CPU count: parallel-vs-sequential ratios are
# only meaningful relative to it.
#
#   scripts/bench_explore.sh [--force] [benchtime]     # default 2x
set -eu

cd "$(dirname "$0")/.."
. scripts/bench_env.sh
bench_filter_args "$@" && eval "set -- $bench_args"
benchtime="${1:-2x}"
bench_guard BENCH_explore.json

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkExplore' -benchtime "$benchtime" \
	./internal/explore/ | tee "$raw"

awk -v cpus="$cpus" -v numcpu="$num_cpu" '
BEGIN { print "["; first = 1 }
$1 ~ /^BenchmarkExplore\// {
	name = $1; sub(/-[0-9]+$/, "", name)
	ns = ""; runs = ""
	for (i = 2; i <= NF; i++) {
		if ($(i) == "ns/op")  ns = $(i - 1)
		if ($(i) == "runs/s") runs = $(i - 1)
	}
	if (ns == "") next
	if (!first) print ","
	first = 0
	printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"runs_per_sec\": %s, \"cpus\": %s, \"num_cpu\": %s}", name, ns, runs, cpus, numcpu
}
END { print ""; print "]" }
' "$raw" > BENCH_explore.json

echo "wrote BENCH_explore.json ($(grep -c '"name"' BENCH_explore.json) entries)"
