#!/usr/bin/env sh
# Runs the supervision-overhead benchmark (BenchmarkResilience in
# internal/explore) and distills it into BENCH_resilience.json at the
# repo root: one record per benchmark plus a paired overhead summary per
# workload. The supervised run must stay within 5% of the plain
# ParallelVisit baseline (the acceptance bound); the script exits
# non-zero when it does not.
#
#   scripts/bench_resilience.sh [--force] [benchtime]     # default 3x
set -eu

cd "$(dirname "$0")/.."
. scripts/bench_env.sh
bench_filter_args "$@" && eval "set -- $bench_args"
benchtime="${1:-3x}"
bench_guard BENCH_resilience.json

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkResilience' -benchtime "$benchtime" \
	./internal/explore/ | tee "$raw"

awk -v cpus="$cpus" -v numcpu="$num_cpu" '
BEGIN { printf "{\n  \"cpus\": %s,\n  \"num_cpu\": %s,\n", cpus, numcpu; print "  \"benchmarks\": ["; first = 1 }
$1 ~ /^BenchmarkResilience\// {
	name = $1; sub(/-[0-9]+$/, "", name)
	ns = ""; runs = ""
	for (i = 2; i <= NF; i++) {
		if ($(i) == "ns/op")  ns = $(i - 1)
		if ($(i) == "runs/s") runs = $(i - 1)
	}
	if (ns == "") next
	if (!first) print ","
	first = 0
	printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"runs_per_sec\": %s}", name, ns, runs
	# Pair rows by workload: .../plain then .../supervised.
	wl = name
	sub(/^BenchmarkResilience\//, "", wl)
	if (sub(/\/plain$/, "", wl))      plain[wl] = ns
	else if (sub(/\/supervised$/, "", wl)) sup[wl] = ns
	order[wl] = 1
}
END {
	print ""; print "  ],"
	print "  \"overhead\": ["
	firstw = 1; bad = 0
	for (wl in order) {
		if (!(wl in plain) || !(wl in sup)) continue
		pct = (sup[wl] - plain[wl]) * 100.0 / plain[wl]
		if (pct > 5.0) bad = 1
		if (!firstw) print ","
		firstw = 0
		printf "    {\"workload\": \"%s\", \"plain_ns_per_op\": %s, \"supervised_ns_per_op\": %s, \"overhead_pct\": %.2f}", wl, plain[wl], sup[wl], pct
	}
	print ""; print "  ]"
	print "}"
	exit bad
}
' "$raw" > BENCH_resilience.json || {
	cat BENCH_resilience.json
	echo "bench_resilience: supervised overhead exceeds the 5% bound" >&2
	exit 1
}

echo "wrote BENCH_resilience.json ($(grep -c '"name"' BENCH_resilience.json) entries)"
