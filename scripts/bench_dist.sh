#!/usr/bin/env sh
# Times the distributed census end to end — real censusd coordinator,
# real censusworker processes over loopback HTTP — and distills the
# results into BENCH_dist.json at the repo root: wall-clock seconds per
# configuration for a fixed reference census (cas k=4 n=3), at 0 (pure
# local fallback), 1, and 2 workers. Each record carries the worker
# count and the host CPU counts; distribution over loopback on one box
# measures protocol overhead, not speedup — the numbers bound the
# coordination tax, they do not advertise scaling.
#
#   scripts/bench_dist.sh [--force]
set -eu

cd "$(dirname "$0")/.."
. scripts/bench_env.sh
bench_filter_args "$@" && eval "set -- $bench_args"
bench_guard BENCH_dist.json

for tool in curl jq; do
	if ! command -v "$tool" >/dev/null 2>&1; then
		echo "bench_dist: $tool not found; skipping distributed bench" >&2
		exit 0
	fi
done

work="$(mktemp -d)"
daemon_pid=""
worker_pids=""
cleanup() {
	for pid in $worker_pids $daemon_pid; do
		if kill -0 "$pid" 2>/dev/null; then
			kill -9 "$pid" 2>/dev/null || true
			wait "$pid" 2>/dev/null || true
		fi
	done
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "== building censusd and censusworker"
go build -o "$work/censusd" ./cmd/censusd
go build -o "$work/censusworker" ./cmd/censusworker

start_daemon() {
	"$work/censusd" -addr 127.0.0.1:0 -dir "$1" \
		-workers 1 -checkpoint-every 1 \
		-lease-ttl 5s -worker-poll 50ms \
		>"$work/daemon.out" 2>"$work/daemon.err" &
	daemon_pid=$!
	i=0
	while [ $i -lt 100 ]; do
		addr="$(sed -n 's/^censusd: listening on //p' "$work/daemon.out" 2>/dev/null | head -n1)"
		if [ -n "$addr" ]; then
			base="http://$addr"
			return 0
		fi
		i=$((i + 1))
		sleep 0.1
	done
	echo "bench_dist: coordinator never reported its address" >&2
	exit 1
}

# run_config WORKERS -> seconds on stdout
run_config() {
	nworkers="$1"
	: >"$work/daemon.out"
	start_daemon "$work/data-$nworkers"
	worker_pids=""
	i=0
	while [ $i -lt "$nworkers" ]; do
		"$work/censusworker" -coordinator "$base" -dir "$work/w$nworkers-$i" \
			-id "bench-w$i" -poll 50ms >/dev/null 2>&1 &
		worker_pids="$worker_pids $!"
		i=$((i + 1))
	done
	if [ "$nworkers" -gt 0 ]; then
		i=0
		while :; do
			live="$(curl -sS "$base/healthz" | jq -r .workers_live)"
			[ "$live" -ge "$nworkers" ] 2>/dev/null && break
			i=$((i + 1))
			if [ $i -gt 100 ]; then
				echo "bench_dist: workers never registered" >&2
				exit 1
			fi
			sleep 0.1
		done
	fi

	t0="$(date +%s%N 2>/dev/null || date +%s)"
	id="$(curl -sS -X POST "$base/jobs" -d '{"protocol":"cas","k":4,"n":3,"workers":2}' | jq -r .id)"
	i=0
	while :; do
		state="$(curl -sS "$base/jobs/$id" | jq -r .state)"
		[ "$state" = "done" ] && break
		if [ "$state" = "failed" ]; then
			echo "bench_dist: job failed" >&2
			exit 1
		fi
		i=$((i + 1))
		if [ $i -gt 6000 ]; then
			echo "bench_dist: job stuck in $state" >&2
			exit 1
		fi
		sleep 0.05
	done
	t1="$(date +%s%N 2>/dev/null || date +%s)"
	remote="$(curl -sS "$base/healthz" | jq -r .remote_roots)"

	for pid in $worker_pids; do
		kill -TERM "$pid" 2>/dev/null || true
		wait "$pid" 2>/dev/null || true
	done
	worker_pids=""
	kill -TERM "$daemon_pid" 2>/dev/null || true
	wait "$daemon_pid" 2>/dev/null || true
	daemon_pid=""

	# Nanosecond timestamps when the platform has them, else seconds.
	case "$t0$t1" in
	*N*) secs="unknown" ;;
	*) secs="$(awk -v a="$t0" -v b="$t1" 'BEGIN { d = b - a; if (d > 1000000) d /= 1e9; printf "%.3f", d }')" ;;
	esac
	echo "$secs $remote"
}

echo "== timing cas k=4 n=3 at 0, 1, and 2 workers"
out="[\n"
first=1
for n in 0 1 2; do
	set -- $(run_config "$n")
	secs="$1"
	remote="$2"
	echo "   workers=$n: ${secs}s (remote_roots=$remote)"
	[ "$first" = "1" ] || out="$out,\n"
	first=0
	out="$out  {\"name\": \"dist/cas-k4-n3/workers=$n\", \"workers\": $n, \"seconds\": $secs, \"remote_roots\": $remote, \"cpus\": $cpus, \"num_cpu\": $num_cpu}"
done
out="$out\n]"
printf "$out\n" > BENCH_dist.json

echo "wrote BENCH_dist.json ($(grep -c '"name"' BENCH_dist.json) entries)"
