#!/usr/bin/env sh
# Tier-1 verification: build, vet, full test suite, plus race-detector
# runs of the concurrency-bearing packages (the parallel exploration
# engine and the simulator it drives). Run from the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/explore/... ./internal/sim/... ./internal/faults/... ./internal/election/..."
go test -race ./internal/explore/... ./internal/sim/... ./internal/faults/... ./internal/election/...

echo "== fault-injection smoke census (degrading compare&swap, 1 crash + 1 object fault)"
go run ./cmd/explore -protocol casdeg -k 3 -n 2 -crashes 1 -objfaults 1 \
	-prune -workers -1 -maxruns 200000 -bivalence=false

echo "verify: OK"
