#!/usr/bin/env sh
# Tier-1 verification: build, vet, full test suite, plus race-detector
# runs of the concurrency-bearing packages (the parallel exploration
# engine and the simulator it drives). Run from the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/explore/... ./internal/sim/..."
go test -race ./internal/explore/... ./internal/sim/...

echo "verify: OK"
