#!/usr/bin/env sh
# Tier-1 verification: build, vet, full test suite, plus race-detector
# runs of the concurrency-bearing packages (the parallel exploration
# engine and the simulator it drives). Run from the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/explore/... ./internal/sim/... ./internal/faults/... ./internal/election/... ./internal/consensus/... ./internal/runctx/..."
go test -race ./internal/explore/... ./internal/sim/... ./internal/faults/... ./internal/election/... ./internal/consensus/... ./internal/runctx/...

echo "== census daemon under the race detector (admission, dedup, recovery, kill -9 chaos)"
go test -race -count=1 ./internal/censusd/

echo "== distributed-census client/worker under the race detector"
go test -race -count=1 ./internal/distcensus/

echo "== supervisor tests under the race detector (chaos, watchdog, cancellation, checkpoint)"
go test -race -count=1 -run 'Supervis|Chaos|Watchdog|Cancel|Checkpoint|Backoff|WorkerPanic' \
	./internal/explore/

echo "== reduction paths under the race detector (symmetry folding, sleep-set credit, forced donation)"
go test -race -count=1 -run 'TestReducedCensusMatchesUnreduced|TestSymmetryRefuses|TestCanonicalHashPermutationInvariant' \
	./internal/explore/ ./internal/sim/

echo "== reduction smoke: reduced census must match unreduced bit-for-bit (fast tier)"
go test -count=1 -run 'TestReducedCensusMatchesUnreduced' ./internal/explore/

echo "== machine-engine census smoke: direct dispatch vs -goroutines must agree byte for byte"
mjson="$(mktemp)"
gjson="$(mktemp)"
go run ./cmd/explore -protocol cas -k 4 -n 2 -crashes 1 -prune -symmetry \
	-workers 1 -bivalence=false -json > "$mjson"
go run ./cmd/explore -protocol cas -k 4 -n 2 -crashes 1 -prune -symmetry \
	-workers 1 -bivalence=false -json -goroutines > "$gjson"
if ! cmp -s "$mjson" "$gjson"; then
	echo "verify: FAIL — machine-engine census differs from the goroutine engine:" >&2
	diff "$mjson" "$gjson" >&2 || true
	exit 1
fi
go run ./cmd/explore -protocol swap -n 3 -crashes 1 -symmetry \
	-workers 1 -bivalence=false -json > "$mjson"
go run ./cmd/explore -protocol swap -n 3 -crashes 1 -symmetry \
	-workers 1 -bivalence=false -json -goroutines > "$gjson"
if ! cmp -s "$mjson" "$gjson"; then
	echo "verify: FAIL — swap-witness machine census differs from the goroutine engine:" >&2
	diff "$mjson" "$gjson" >&2 || true
	exit 1
fi
rm -f "$mjson" "$gjson"

echo "== fingerprint audit census: incremental plain+canonical hashes cross-checked against from-scratch recomputes on every step"
go run ./cmd/explore -protocol cas -k 4 -n 3 -crashes 1 -symmetry -verifyfp \
	-workers 1 -maxruns 200000 -bivalence=false >/dev/null

echo "== benchmark smoke (-benchtime 1x: every benchmark still runs)"
go test -run '^$' -bench 'BenchmarkSimStep' -benchtime 1x ./internal/sim/ >/dev/null
go test -run '^$' -bench 'BenchmarkExplore' -benchtime 1x ./internal/explore/ >/dev/null
go test -run '^$' -bench 'BenchmarkWrapOverhead|BenchmarkFaultCensus' -benchtime 1x ./internal/faults/ >/dev/null

echo "== fault-injection smoke census (degrading compare&swap, 1 crash + 1 object fault)"
go run ./cmd/explore -protocol casdeg -k 3 -n 2 -crashes 1 -objfaults 1 \
	-prune -workers -1 -maxruns 200000 -bivalence=false

echo "== chaos smoke: supervised census survives injected kills and stalls, then resumes clean"
ck="$(mktemp -u)"
go run ./cmd/explore -protocol casdeg -k 3 -n 2 -crashes 1 -objfaults 1 \
	-prune -workers 4 -maxruns 200000 -bivalence=false \
	-checkpoint "$ck" -retries 5 -stall-timeout 2s \
	-chaos-kills 2 -chaos-stalls 1 -chaos-stall-for 20ms -chaos-seed 7
go run ./cmd/explore -protocol casdeg -k 3 -n 2 -crashes 1 -objfaults 1 \
	-prune -workers 4 -maxruns 200000 -bivalence=false \
	-checkpoint "$ck" -resume
rm -f "$ck"

echo "== daemon chaos smoke: kill -9 the census daemon mid-run, restart, assert bit-identical results"
scripts/daemon_chaos.sh

echo "== distributed chaos smoke: kill -9 a worker mid-lease and the coordinator mid-run, assert bit-identical results and stale rejection"
scripts/dist_chaos.sh

echo "== timeout smoke: a cancelled census must exit non-zero (and zero with -allow-partial)"
if go run ./cmd/explore -protocol cas -k 5 -n 4 -crashes 1 -maxruns 100000000 \
	-workers 4 -timeout 2s -bivalence=false >/dev/null 2>&1; then
	echo "verify: FAIL — cancelled census exited zero without -allow-partial" >&2
	exit 1
fi
go run ./cmd/explore -protocol cas -k 5 -n 4 -crashes 1 -maxruns 100000000 \
	-workers 4 -timeout 2s -bivalence=false -allow-partial >/dev/null

if [ -n "${VERIFY_BENCH_BASE:-}" ]; then
	echo "== opt-in benchmark regression gate vs $VERIFY_BENCH_BASE"
	scripts/bench_compare.sh "$VERIFY_BENCH_BASE"
fi

echo "verify: OK"
