# Shared CPU-environment recording and overwrite guard for the
# bench_*.sh distillers. Source this from a bench script, then:
#
#   bench_filter_args "$@" && eval "set -- $bench_args"
#   ...
#   bench_guard BENCH_x.json      # before overwriting the JSON
#
# $cpus is GOMAXPROCS — what the Go runtime will actually use — and
# $num_cpu is the host's online processor count; the distillers record
# both in every BENCH_*.json entry. Parallel-vs-sequential ratios
# recorded on a multi-CPU host are not comparable to a cpus=1 rerun
# (the parallel engines silently serialize), so bench_guard refuses to
# overwrite multi-CPU data from a single-CPU run unless --force was
# passed (or BENCH_FORCE=1 is set).

cpus="$(go env GOMAXPROCS 2>/dev/null || echo 0)"
[ "$cpus" -gt 0 ] 2>/dev/null || cpus="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
num_cpu="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
force="${BENCH_FORCE:-0}"

# bench_filter_args strips --force from the argument list (setting
# force=1) and leaves the rest, single-quoted, in $bench_args for the
# caller to re-`set --`.
bench_filter_args() {
	bench_args=""
	for bench_arg in "$@"; do
		case "$bench_arg" in
		--force) force=1 ;;
		*) bench_args="$bench_args '$bench_arg'" ;;
		esac
	done
}

# bench_guard OUT refuses (exit 1) to overwrite OUT when OUT records
# any entry with cpus > 1 but this run has cpus=1 and --force was not
# given.
bench_guard() {
	bench_out="$1"
	[ "$force" = "1" ] && return 0
	[ "$cpus" -le 1 ] 2>/dev/null || return 0
	[ -f "$bench_out" ] || return 0
	bench_prev="$(grep -o '"cpus": *[0-9][0-9]*' "$bench_out" | grep -o '[0-9][0-9]*$' | sort -rn | head -1)"
	if [ -n "$bench_prev" ] && [ "$bench_prev" -gt 1 ]; then
		echo "refusing to overwrite $bench_out: it was recorded with cpus=$bench_prev but this run has cpus=$cpus." >&2
		echo "A single-CPU rerun would erase the parallel-speedup evidence; pass --force to overwrite anyway." >&2
		exit 1
	fi
}
