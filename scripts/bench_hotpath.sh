#!/usr/bin/env sh
# Runs the simulator hot-path benchmarks (internal/sim BenchmarkSimStep:
# per-step cost with fingerprinting off/on, plus the allocs/op guard)
# and distills them into BENCH_hotpath.json at the repo root. The
# goroutine runner and the direct-dispatch machine runner land side by
# side — the "machine,fingerprint=..." rows against their unprefixed
# goroutine twins — so the recorded file IS the tentpole's ns/step
# speedup evidence. Each record carries the host's CPU count: per-step
# numbers are meaningful on any box, but parallel-speedup expectations
# are not portable off multi-core hosts.
#
#   scripts/bench_hotpath.sh [--force] [benchtime]     # default 100x
set -eu

cd "$(dirname "$0")/.."
. scripts/bench_env.sh
bench_filter_args "$@" && eval "set -- $bench_args"
benchtime="${1:-100x}"
bench_guard BENCH_hotpath.json

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkSimStep' -benchtime "$benchtime" \
	./internal/sim/ | tee "$raw"

awk -v cpus="$cpus" -v numcpu="$num_cpu" '
BEGIN { print "["; first = 1 }
$1 ~ /^BenchmarkSimStep\// {
	name = $1; sub(/-[0-9]+$/, "", name)
	ns = ""; step = ""; allocs = ""
	for (i = 2; i <= NF; i++) {
		if ($(i) == "ns/op")     ns = $(i - 1)
		if ($(i) == "ns/step")   step = $(i - 1)
		if ($(i) == "allocs/op") allocs = $(i - 1)
	}
	if (ns == "") next
	if (!first) print ","
	first = 0
	printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"ns_per_step\": %s, \"allocs_per_op\": %s, \"cpus\": %s, \"num_cpu\": %s}", \
		name, ns, step, allocs, cpus, numcpu
}
END { print ""; print "]" }
' "$raw" > BENCH_hotpath.json

echo "wrote BENCH_hotpath.json ($(grep -c '"name"' BENCH_hotpath.json) entries)"
