#!/usr/bin/env sh
# Performance-regression gate: runs the exploration benchmarks on the
# working tree AND on a base git ref (checked out into a throwaway
# worktree), then fails if any benchmark present in both runs got more
# than 10% slower (ns/op) in the working tree. A benchmark the base ref
# does not have by the same name also FAILS the gate: a comparison that
# silently skips the benchmarks you care about is worse than no gate.
# Set BENCH_COMPARE_ALLOW_NEW=1 when the working tree legitimately adds
# or renames benchmarks the base cannot know about.
#
#   scripts/bench_compare.sh [base-ref] [benchtime]   # default HEAD, 2x
set -eu

cd "$(dirname "$0")/.."
base="${1:-HEAD}"
benchtime="${2:-2x}"
pat='BenchmarkExplore'

cur="$(mktemp)"
old="$(mktemp)"
wt="$(mktemp -d)/base"
cleanup() {
	rm -f "$cur" "$old"
	git worktree remove --force "$wt" 2>/dev/null || true
	rm -rf "$(dirname "$wt")"
}
trap cleanup EXIT

echo "== benchmarking working tree ($pat, benchtime $benchtime)"
go test -run '^$' -bench "$pat" -benchtime "$benchtime" ./internal/explore/ | tee "$cur"

echo "== benchmarking base ref $base"
git worktree add --force --detach "$wt" "$base" >/dev/null
(cd "$wt" && go test -run '^$' -bench "$pat" -benchtime "$benchtime" ./internal/explore/) | tee "$old"

awk -v limit=1.10 -v base="$base" -v allownew="${BENCH_COMPARE_ALLOW_NEW:-0}" '
function bench(line,    name) {
	name = $1; sub(/-[0-9]+$/, "", name)
	for (i = 2; i <= NF; i++) if ($(i) == "ns/op") return name SUBSEP $(i - 1)
	return ""
}
FNR == NR {
	if ($1 ~ /^Benchmark/) { r = bench($0); if (r != "") { split(r, a, SUBSEP); oldns[a[1]] = a[2] } }
	next
}
$1 ~ /^Benchmark/ {
	r = bench($0); if (r == "") next
	split(r, a, SUBSEP); name = a[1]; ns = a[2]
	if (!(name in oldns)) {
		printf "  MISSING in %s: %s\n", base, name
		missing++
		next
	}
	ratio = ns / oldns[name]
	seen[name] = 1
	if (ratio > limit) {
		printf "  REGRESSION %s: %.0f -> %.0f ns/op (%.2fx)\n", name, oldns[name], ns, ratio
		bad = 1
	} else {
		printf "  ok %s: %.0f -> %.0f ns/op (%.2fx)\n", name, oldns[name], ns, ratio
	}
}
END {
	for (name in oldns) if (!(name in seen)) printf "  gone (only in %s): %s\n", base, name
	if (bad) { print "bench_compare: FAIL — ns/op regressed more than 10% vs " base; exit 1 }
	if (missing > 0 && allownew != "1") {
		printf "bench_compare: FAIL — %d benchmark(s) have no counterpart in %s, so the gate compared nothing for them\n", missing, base
		print "  (set BENCH_COMPARE_ALLOW_NEW=1 if the working tree legitimately adds or renames benchmarks)"
		exit 1
	}
	print "bench_compare: OK (no benchmark regressed more than 10% vs " base ")"
}
' "$old" "$cur"
